"""Benchmark RT: the experiment runtime — plan caching, fan-out, dispatch, resume.

Expected shape: a warm :class:`PlanCache` serves repeated planning requests at
least 2x faster than planning from scratch (in practice orders of magnitude),
the parallel grid produces results identical to serial execution, a resumed
sweep recomputes nothing, process-pool dispatch ships a constant-size
:class:`DatabaseSpec` payload — per-task pickling cost no longer grows with
database scale — and the distributed work-queue executor stays byte-identical
to serial while writing a sharded store that merges flat.
"""

import json
import pickle
import time

from repro.config import RuntimeConfig
from repro.core.experiment import ExperimentConfig
from repro.core.splits import SplitSampling, generate_split
from repro.experiments.common import distributed_runtime, job_context
from repro.optimizer.planner import Planner
from repro.runtime.parallel import ParallelExperimentRunner
from repro.runtime.plan_cache import PlanCache
from repro.runtime.result_store import ResultStore, ShardedResultStore

#: Number of repeated planning passes over the workload (ablation-style reuse).
PLANNING_PASSES = 5

#: Spec dispatch must stay below this pickled payload size at any scale.
MAX_PAYLOAD_BYTES = 10 * 1024


def test_plan_cache_speedup_on_repeated_planning(benchmark, bench_scale):
    """A warm plan cache must make repeated planning >= 2x faster."""
    context = job_context(bench_scale)
    queries = [q.bound for q in context.workload.queries]

    def plan_all(planner: Planner) -> float:
        start = time.perf_counter()
        for bound in queries:
            planner.plan_with_info(bound)
        return time.perf_counter() - start

    # Cold baseline: every pass pays full planning (cache disabled).
    uncached_planner = Planner(context.database, plan_cache=PlanCache(max_entries=0))
    cold_total = sum(plan_all(uncached_planner) for _ in range(PLANNING_PASSES))

    # Cached: the first pass fills the cache, later passes are near-free.
    cached_planner = Planner(context.database, plan_cache=PlanCache(max_entries=4096))
    warm_total = benchmark.pedantic(
        lambda: sum(plan_all(cached_planner) for _ in range(PLANNING_PASSES)),
        iterations=1,
        rounds=1,
    )

    stats = cached_planner.plan_cache.stats
    assert stats.hits >= len(queries) * (PLANNING_PASSES - 1)
    speedup = cold_total / max(warm_total, 1e-9)
    print()
    print(
        f"plan cache: cold {cold_total * 1000:.1f} ms vs warm {warm_total * 1000:.1f} ms "
        f"-> {speedup:.1f}x speedup, {cached_planner.plan_cache.describe()}"
    )
    assert speedup >= 2.0


def test_parallel_grid_smoke_and_resume(benchmark, bench_scale, bench_runtime, tmp_path):
    """Fan the reduced grid out over workers, then resume it from the store.

    Honours ``REPRO_BENCH_EXECUTOR``: with ``process`` the grid dispatches
    spec payloads and workers write the store, so resume is asserted via the
    stored files' write times (parent-side load counters only cover the
    thread/serial executors).
    """
    context = job_context(bench_scale)
    split = generate_split(context.workload, SplitSampling.RANDOM, seed=0)
    store = ResultStore(tmp_path / "rt-store")
    config = ExperimentConfig(optimizer_kwargs={"bao": {"training_passes": 1}})
    methods = ("postgres", "bao", "hybridqo")

    def sweep() -> list:
        runner = ParallelExperimentRunner(
            context.dispatch_source,
            context.workload,
            experiment_config=config,
            runtime_config=RuntimeConfig(
                workers=max(bench_runtime.workers, 2),
                executor_kind=bench_runtime.executor_kind,
            ),
            result_store=store,
        )
        return runner.run_grid(methods, [split])

    first = benchmark.pedantic(sweep, iterations=1, rounds=1)
    assert [r.method for r in first] == list(methods)
    files_before = {path: path.stat().st_mtime_ns for path in store.completed_files()}
    assert len(files_before) == len(methods)

    resume_start = time.perf_counter()
    second = sweep()
    resume_elapsed = time.perf_counter() - resume_start
    assert [r.to_dict() for r in second] == [r.to_dict() for r in first]
    files_after = {path: path.stat().st_mtime_ns for path in store.completed_files()}
    assert files_after == files_before  # nothing was recomputed or re-written
    print()
    print(f"resume of {len(methods)}-task grid took {resume_elapsed * 1000:.1f} ms; {store.describe()}")


def test_spec_dispatch_payload_constant_in_scale(benchmark, bench_scale):
    """Process-pool dispatch ships the spec: payload size must not grow with scale.

    The legacy path pickled the whole database per task (cost linear in table
    bytes); spec dispatch pickles a :class:`SpecTaskPayload` of a few hundred
    bytes regardless of scale.  Measured here at the bench scale and at 4x.
    """
    split_ids = dict(train_ids=("1a", "2a", "3a"), test_ids=("1b", "2b"))
    payload_bytes: dict[float, int] = {}
    database_bytes: dict[float, int] = {}

    def measure() -> dict[float, int]:
        from repro.core.splits import DatasetSplit

        for scale in (bench_scale, 4 * bench_scale):
            context = job_context(scale)
            runner = ParallelExperimentRunner(
                context.dispatch_source,
                context.workload,
                runtime_config=RuntimeConfig(workers=2, executor_kind="process"),
            )
            assert runner.uses_spec_dispatch
            split = DatasetSplit(context.workload.name, SplitSampling.RANDOM, 0, **split_ids)
            task = runner.tasks_for(("postgres",), [split])[0]
            payload_bytes[scale] = len(pickle.dumps(runner.spec_payload(task)))
            database_bytes[scale] = len(pickle.dumps(context.database))
        return payload_bytes

    benchmark.pedantic(measure, iterations=1, rounds=1)
    small, large = sorted(payload_bytes)
    print()
    for scale in (small, large):
        ratio = database_bytes[scale] / max(payload_bytes[scale], 1)
        print(
            f"scale {scale:g}: spec payload {payload_bytes[scale]} B vs database pickle "
            f"{database_bytes[scale] / 1e6:.1f} MB ({ratio:,.0f}x smaller)"
        )
    assert payload_bytes[small] < MAX_PAYLOAD_BYTES
    assert payload_bytes[large] < MAX_PAYLOAD_BYTES
    # Constant in scale: quadrupling the database must not grow the payload.
    assert payload_bytes[large] == payload_bytes[small]
    # The database pickle it replaces *does* grow with scale.
    assert database_bytes[large] > database_bytes[small]


def test_process_pool_spec_dispatch_equivalent_to_serial(benchmark, bench_scale):
    """Spec-dispatched process-pool results stay byte-identical to serial."""
    context = job_context(bench_scale)
    split = generate_split(context.workload, SplitSampling.RANDOM, seed=0)
    config = ExperimentConfig(optimizer_kwargs={"bao": {"training_passes": 1}})
    methods = ("postgres", "bao")

    def run(kind: str, workers: int) -> list:
        runner = ParallelExperimentRunner(
            context.dispatch_source,
            context.workload,
            experiment_config=config,
            runtime_config=RuntimeConfig(workers=workers, executor_kind=kind),
        )
        return runner.run_grid(methods, [split])

    parallel_results = benchmark.pedantic(
        lambda: run("process", 2), iterations=1, rounds=1
    )
    serial_results = run("serial", 1)
    a = [json.dumps(r.to_dict(), sort_keys=True) for r in parallel_results]
    b = [json.dumps(r.to_dict(), sort_keys=True) for r in serial_results]
    assert a == b
    print()
    print(f"process-pool grid of {len(a)} tasks byte-identical to serial at scale {bench_scale}")


def test_distributed_workqueue_equivalent_to_serial(benchmark, bench_scale, tmp_path):
    """The work-queue executor (2 local worker processes, sharded store) must
    stay byte-identical to serial, and the shards must merge into a flat
    store from which every task loads under its context fingerprint."""
    context = job_context(bench_scale)
    split = generate_split(context.workload, SplitSampling.RANDOM, seed=0)
    config = ExperimentConfig(optimizer_kwargs={"bao": {"training_passes": 1}})
    methods = ("postgres", "bao")

    runner = ParallelExperimentRunner(
        context.dispatch_source,
        context.workload,
        experiment_config=config,
        runtime_config=distributed_runtime(tmp_path / "dist-store", workers=2, shard_count=4),
    )
    distributed = benchmark.pedantic(
        lambda: runner.run_grid(methods, [split]), iterations=1, rounds=1
    )
    serial = ParallelExperimentRunner(
        context.dispatch_source,
        context.workload,
        experiment_config=config,
        runtime_config=RuntimeConfig(workers=1, executor_kind="serial"),
    ).run_grid(methods, [split])
    a = [json.dumps(r.to_dict(), sort_keys=True) for r in distributed]
    b = [json.dumps(r.to_dict(), sort_keys=True) for r in serial]
    assert a == b

    store = runner.result_store
    assert isinstance(store, ShardedResultStore)
    merged = store.merge(tmp_path / "merged")
    for task in runner.tasks_for(methods, [split]):
        merged.load(runner.task_key(task), runner.task_fingerprint(task))
    print()
    print(f"distributed grid of {len(a)} tasks byte-identical to serial; {store.describe()}")


def test_distributed_secured_tcp_with_progress_telemetry(benchmark, bench_scale, tmp_path, monkeypatch):
    """An HMAC-authenticated tcp:// sweep with work stealing and live progress
    telemetry: byte-identical to serial, at least one snapshot emitted, and
    the telemetry overhead rides inside the measured sweep."""
    monkeypatch.setenv("REPRO_QUEUE_SECRET", "bench-progress-secret")
    context = job_context(bench_scale)
    split = generate_split(context.workload, SplitSampling.RANDOM, seed=0)
    config = ExperimentConfig(optimizer_kwargs={"bao": {"training_passes": 1}})
    methods = ("postgres", "bao")
    snapshots: list = []

    runner = ParallelExperimentRunner(
        context.dispatch_source,
        context.workload,
        experiment_config=config,
        runtime_config=distributed_runtime(
            tmp_path / "tcp-store",
            workers=2,
            shard_count=4,
            queue_url="tcp://127.0.0.1:0",
            progress_interval_s=0.5,
        ),
        progress_callback=snapshots.append,
    )
    distributed = benchmark.pedantic(
        lambda: runner.run_grid(methods, [split]), iterations=1, rounds=1
    )
    serial = ParallelExperimentRunner(
        context.dispatch_source,
        context.workload,
        experiment_config=config,
        runtime_config=RuntimeConfig(workers=1, executor_kind="serial"),
    ).run_grid(methods, [split])
    a = [json.dumps(r.to_dict(), sort_keys=True) for r in distributed]
    b = [json.dumps(r.to_dict(), sort_keys=True) for r in serial]
    assert a == b
    assert snapshots, "no progress snapshot was emitted"
    final = snapshots[-1]
    assert final.done == final.total == len(a)
    json.loads(final.to_json())
    print()
    print(f"secured tcp sweep of {len(a)} tasks byte-identical to serial; "
          f"{len(snapshots)} snapshot(s), {runner._distributed_stolen} stolen; "
          f"final: {final.describe()}")
