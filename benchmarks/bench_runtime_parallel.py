"""Benchmark RT: the experiment runtime — plan caching, fan-out, resume.

Expected shape: a warm :class:`PlanCache` serves repeated planning requests at
least 2x faster than planning from scratch (in practice orders of magnitude),
the parallel grid produces results identical to serial execution, and a
resumed sweep recomputes nothing.
"""

import time

from repro.config import RuntimeConfig
from repro.core.experiment import ExperimentConfig
from repro.core.splits import SplitSampling, generate_split
from repro.experiments.common import job_context
from repro.optimizer.planner import Planner
from repro.runtime.parallel import ParallelExperimentRunner
from repro.runtime.plan_cache import PlanCache
from repro.runtime.result_store import ResultStore

#: Number of repeated planning passes over the workload (ablation-style reuse).
PLANNING_PASSES = 5


def test_plan_cache_speedup_on_repeated_planning(benchmark, bench_scale):
    """A warm plan cache must make repeated planning >= 2x faster."""
    context = job_context(bench_scale)
    queries = [q.bound for q in context.workload.queries]

    def plan_all(planner: Planner) -> float:
        start = time.perf_counter()
        for bound in queries:
            planner.plan_with_info(bound)
        return time.perf_counter() - start

    # Cold baseline: every pass pays full planning (cache disabled).
    uncached_planner = Planner(context.database, plan_cache=PlanCache(max_entries=0))
    cold_total = sum(plan_all(uncached_planner) for _ in range(PLANNING_PASSES))

    # Cached: the first pass fills the cache, later passes are near-free.
    cached_planner = Planner(context.database, plan_cache=PlanCache(max_entries=4096))
    warm_total = benchmark.pedantic(
        lambda: sum(plan_all(cached_planner) for _ in range(PLANNING_PASSES)),
        iterations=1,
        rounds=1,
    )

    stats = cached_planner.plan_cache.stats
    assert stats.hits >= len(queries) * (PLANNING_PASSES - 1)
    speedup = cold_total / max(warm_total, 1e-9)
    print()
    print(
        f"plan cache: cold {cold_total * 1000:.1f} ms vs warm {warm_total * 1000:.1f} ms "
        f"-> {speedup:.1f}x speedup, {cached_planner.plan_cache.describe()}"
    )
    assert speedup >= 2.0


def test_parallel_grid_smoke_and_resume(benchmark, bench_scale, bench_runtime, tmp_path):
    """Fan the reduced grid out over workers, then resume it from the store."""
    context = job_context(bench_scale)
    split = generate_split(context.workload, SplitSampling.RANDOM, seed=0)
    store = ResultStore(tmp_path / "rt-store")
    config = ExperimentConfig(optimizer_kwargs={"bao": {"training_passes": 1}})
    methods = ("postgres", "bao", "hybridqo")

    def sweep() -> list:
        runner = ParallelExperimentRunner(
            context.database,
            context.workload,
            experiment_config=config,
            runtime_config=RuntimeConfig(workers=max(bench_runtime.workers, 2)),
            result_store=store,
        )
        return runner.run_grid(methods, [split])

    first = benchmark.pedantic(sweep, iterations=1, rounds=1)
    assert [r.method for r in first] == list(methods)
    assert store.stored_count == len(methods)

    resume_start = time.perf_counter()
    second = sweep()
    resume_elapsed = time.perf_counter() - resume_start
    assert [r.to_dict() for r in second] == [r.to_dict() for r in first]
    assert store.loaded_count == len(methods)  # nothing was recomputed
    print()
    print(f"resume of {len(methods)}-task grid took {resume_elapsed * 1000:.1f} ms; {store.describe()}")
