"""Benchmark F4: end-to-end LQO comparison on JOB (Figure 4).

Expected shape: PostgreSQL best or tied on most splits; Bao/HybridQO
competitive; Neo/Balsa slower end-to-end; LEON dominated by inference time.
By default a reduced grid is run (three methods, one split per sampling);
set ``REPRO_BENCH_FULL=1`` for all six methods and three splits per sampling.
"""

from repro.core.experiment import ExperimentConfig
from repro.core.report import format_table
from repro.experiments import figure4
from repro.lqo.registry import MAIN_EVALUATION_METHODS

REDUCED_METHODS = ("postgres", "bao", "hybridqo", "neo")


def test_figure4_job_end_to_end(benchmark, bench_scale, bench_full, bench_runtime, result_store):
    methods = MAIN_EVALUATION_METHODS if bench_full else REDUCED_METHODS
    splits_per_sampling = 3 if bench_full else 1
    config = ExperimentConfig(
        optimizer_kwargs={
            "bao": {"training_passes": 1},
            "neo": {"training_iterations": 1},
            "balsa": {"training_iterations": 1},
            "hybridqo": {"mcts_iterations": 15},
        }
    )
    result = benchmark.pedantic(
        figure4.run,
        kwargs={
            "scale": bench_scale,
            "methods": methods,
            "splits_per_sampling": splits_per_sampling,
            "experiment_config": config,
            "runtime_config": bench_runtime,
            "result_store": result_store,
        },
        iterations=1,
        rounds=1,
    )
    assert len(result.runs) == len(methods) * 3 * splits_per_sampling
    best = result.best_method_per_split()
    # The classical baseline must win or tie on at least one split (paper: most splits).
    assert len(best) == 3 * splits_per_sampling
    result_store.save_artifact("figure4_rows", result.rows())
    print()
    print(format_table(result.rows(), title="Figure 4 (JOB, reduced grid)"))
    print("best method per split:", best)
