"""Benchmark 8.4: bitmap/tid scan ablation (Section 8.4).

Expected shape: disabling bitmap/tid scans changes a meaningful number of
queries in *both* directions.
"""

from repro.experiments import s84_scans

SAMPLE_QUERIES = [
    "1a", "2a", "3a", "4a", "5a", "6a", "7a", "8a", "10a", "13a",
    "15a", "17a", "20a", "22a", "28a", "30a", "32a",
]


def test_s84_bitmap_tid_scan_ablation(benchmark, bench_scale, bench_full):
    query_ids = None if bench_full else SAMPLE_QUERIES
    result = benchmark.pedantic(
        s84_scans.run,
        kwargs={"scale": bench_scale, "hot_samples": 4, "query_ids": query_ids},
        iterations=1,
        rounds=1,
    )
    assert result.outcomes
    speedups = result.top_speedups(3)
    slowdowns = result.top_slowdowns(3)
    print()
    print("disabling bitmap/tid scans — top speedups:",
          [(o.query_id, round(o.speedup_factor, 2)) for o in speedups])
    print("disabling bitmap/tid scans — top slowdowns:",
          [(o.query_id, round(o.slowdown_factor, 2)) for o in slowdowns])
    print("affected (>0.25 ms):", len(result.affected_queries(0.25)),
          "significant:", len(result.significant_queries(0.25)))
