"""Benchmark 8.6: choice of k for repeated executions (Section 8.6).

The same underlying measurement as Figure 7, analysed from the protocol angle:
taking the third execution must be no less robust than averaging the first
three (where the cold first run dominates as an outlier), and cheaper than
five executions.
"""

import numpy as np

from repro.experiments import figure7

SAMPLE_QUERIES = ["1a", "2a", "5a", "6a", "11a", "17a", "21a", "30a"]


def test_s86_third_execution_is_robust(benchmark, bench_scale):
    result = benchmark.pedantic(
        figure7.run,
        kwargs={"scale": bench_scale, "executions": 8, "query_ids": SAMPLE_QUERIES},
        iterations=1,
        rounds=1,
    )
    third_run_spread = []
    mean_of_three_spread = []
    for measurement in result.measurements:
        times = np.asarray(measurement.execution_times_ms)
        hot_reference = float(np.median(times[3:]))
        third_run_spread.append(abs(times[2] - hot_reference) / hot_reference)
        mean_of_three_spread.append(abs(times[:3].mean() - hot_reference) / hot_reference)
    third = float(np.mean(third_run_spread))
    averaged = float(np.mean(mean_of_three_spread))
    assert third <= averaged + 1e-9
    print()
    print(f"Section 8.6: |third run - hot reference| = {third * 100:.1f}% vs "
          f"|mean of first three - hot reference| = {averaged * 100:.1f}% "
          "(taking the 3rd run is the more robust, cheaper protocol)")
