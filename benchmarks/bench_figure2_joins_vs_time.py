"""Benchmark F2: execution time vs. number of joins (Figure 2).

Expected shape: R² of the joins→time regression near or below zero.
"""

from repro.experiments import figure2


def test_figure2_joins_vs_execution_time(benchmark, bench_scale, result_store):
    result = benchmark.pedantic(
        figure2.run, kwargs={"scale": bench_scale}, iterations=1, rounds=1
    )
    assert result.regression.n == 113
    # Join count must not be a good predictor of execution time.
    assert result.regression.r_squared < 0.5
    result_store.save_artifact(
        "figure2_regression",
        {"r_squared": result.regression.r_squared, "n": result.regression.n},
    )
    print()
    print(
        f"Figure 2: R^2={result.regression.r_squared:.3f} over {result.regression.n} queries "
        f"(paper: -0.11)"
    )
