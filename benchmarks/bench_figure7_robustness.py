"""Benchmark F7: robustness of repeated query executions (Figure 7).

Expected shape: a double-digit percentage drop between the 1st and 2nd
execution, roughly 1% between the 2nd and 3rd, then no trend.
"""

from repro.experiments import figure7

SAMPLE_QUERIES = ["1a", "2a", "3a", "4a", "6a", "8a", "10a", "17a", "20a", "32a"]


def test_figure7_execution_robustness(benchmark, bench_scale, bench_full, result_store):
    executions = 50 if bench_full else 12
    query_ids = None if bench_full else SAMPLE_QUERIES
    result = benchmark.pedantic(
        figure7.run,
        kwargs={"scale": bench_scale, "executions": executions, "query_ids": query_ids},
        iterations=1,
        rounds=1,
    )
    drop_1 = result.mean_drop(1)
    drop_2 = result.mean_drop(2)
    assert drop_1 > 0.03            # the cache warm-up is clearly visible
    assert abs(drop_2) < drop_1     # and mostly done after the second run
    result_store.save_artifact(
        "figure7_aggregated", {str(k): v for k, v in result.aggregated.items()}
    )
    print()
    print(f"Figure 7: mean drop 1->2 = {drop_1 * 100:.1f}% (paper: 14.6%), "
          f"2->3 = {drop_2 * 100:.1f}% (paper: 1.03%)")
