"""Benchmark F5: end-to-end LQO comparison on STACK (Figure 5)."""

from repro.core.experiment import ExperimentConfig
from repro.core.report import format_table
from repro.experiments import figure5
from repro.lqo.registry import MAIN_EVALUATION_METHODS

REDUCED_METHODS = ("postgres", "bao", "hybridqo")


def test_figure5_stack_end_to_end(benchmark, bench_scale, bench_full, bench_runtime, result_store):
    methods = MAIN_EVALUATION_METHODS if bench_full else REDUCED_METHODS
    splits_per_sampling = 3 if bench_full else 1
    config = ExperimentConfig(
        optimizer_kwargs={
            "bao": {"training_passes": 1},
            "neo": {"training_iterations": 1},
            "balsa": {"training_iterations": 1},
            "hybridqo": {"mcts_iterations": 15},
        }
    )
    result = benchmark.pedantic(
        figure5.run,
        kwargs={
            "scale": bench_scale,
            "methods": methods,
            "splits_per_sampling": splits_per_sampling,
            "experiment_config": config,
            "runtime_config": bench_runtime,
            "result_store": result_store,
        },
        iterations=1,
        rounds=1,
    )
    assert len(result.runs) == len(methods) * 3 * splits_per_sampling
    assert all(run.timings for run in result.runs)
    result_store.save_artifact("figure5_rows", result.rows())
    print()
    print(format_table(result.rows(), title="Figure 5 (STACK, reduced grid)"))
    print("best method per split:", result.best_method_per_split())
