"""Benchmark F6: training time vs. combined workload runtime (Figure 6).

Expected shape: no positive payoff from longer training — the methods that
train the longest do not produce the fastest workloads.
"""

from repro.core.experiment import ExperimentConfig
from repro.core.report import format_table
from repro.experiments import figure4, figure6


def test_figure6_training_time_vs_runtime(benchmark, bench_scale, result_store):
    config = ExperimentConfig(
        optimizer_kwargs={
            "bao": {"training_passes": 1},
            "neo": {"training_iterations": 1},
            "hybridqo": {"mcts_iterations": 10},
        }
    )

    def body():
        job = figure4.run(
            scale=bench_scale,
            methods=("postgres", "bao", "neo", "hybridqo"),
            splits_per_sampling=1,
            experiment_config=config,
            result_store=result_store,
        )
        return figure6.run(precomputed=[job])

    points = benchmark.pedantic(body, iterations=1, rounds=1)
    learned = [p for p in points if p.method != "postgres"]
    assert learned and all(p.training_time_s > 0 for p in learned)
    postgres_points = [p for p in points if p.method == "postgres"]
    assert all(p.training_time_s == 0.0 for p in postgres_points)
    summary = figure6.correlation_summary(points)
    result_store.save_artifact(
        "figure6_points",
        [
            {
                "method": p.method,
                "split": p.split,
                "training_time_s": p.training_time_s,
                "workload_runtime_ms": p.workload_runtime_ms,
            }
            for p in points
        ],
    )
    print()
    print(format_table([{
        "method": p.method, "split": p.split,
        "training_time_s": round(p.training_time_s, 2),
        "workload_runtime_ms": round(p.workload_runtime_ms, 1),
    } for p in points], title="Figure 6 points (JOB, reduced grid)"))
    print("correlation summary:", summary)
