"""Benchmark 8.7: bushy vs. left-deep plan analysis (Section 8.7).

Expected shape: bushy plans at least match left-deep plans, and at the fast
tail of the combined distribution bushy plans are significantly better —
removing them from an LQO's search space lowers the chance of finding the
best plan.
"""

from repro.experiments import s87_plan_types


def test_s87_plan_shape_analysis(benchmark, bench_scale, bench_full):
    max_plans = 48 if bench_full else 20
    result = benchmark.pedantic(
        s87_plan_types.run,
        kwargs={"scale": bench_scale, "max_joins": 4, "max_plans_per_query": max_plans},
        iterations=1,
        rounds=1,
    )
    bushy = result.times_for(bushy=True)
    linear = result.times_for(bushy=False)
    assert bushy.size > 0 and linear.size > 0
    # The fastest bushy plan is at least as good as the fastest left-deep plan
    # (within measurement noise) — the paper's "fast tail" argument.
    assert bushy.min() <= linear.min() * 1.10
    summary = s87_plan_types.summary(result)
    print()
    print("Section 8.7 summary:", summary)
