"""Benchmark several optimizers across the three dataset-split strategies.

A compact version of the paper's Figure 4 experiment: train PostgreSQL (no-op),
Bao, HybridQO and Neo on each split's training queries and compare the
end-to-end timing decomposition (inference + planning + execution) on the test
queries.

Run with ``python examples/job_split_benchmark.py``.
"""

from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.report import format_table
from repro.core.splits import SplitSampling, generate_split
from repro.experiments.common import job_context

METHODS = ("postgres", "bao", "hybridqo", "neo")


def main() -> None:
    context = job_context(scale=0.35)
    runner = ExperimentRunner(
        context.database,
        context.workload,
        experiment_config=ExperimentConfig(
            optimizer_kwargs={
                "bao": {"training_passes": 1},
                "neo": {"training_iterations": 1},
                "hybridqo": {"mcts_iterations": 15},
            }
        ),
    )

    all_rows = []
    for sampling in SplitSampling:
        split = generate_split(context.workload, sampling, seed=0)
        print(f"== {split.describe()} ==")
        for method in METHODS:
            result = runner.run_method(method, split)
            row = result.summary_row()
            all_rows.append(row)
            print(
                f"  {method:10s} train={row['training_time_s']:>7.1f}s "
                f"plan+infer={row['inference_ms'] + row['planning_ms']:>9.1f}ms "
                f"exec={row['execution_ms']:>9.1f}ms "
                f"end-to-end={row['end_to_end_ms']:>9.1f}ms timeouts={row['timeouts']}"
            )
        print()

    print(format_table(all_rows, title="Summary across splits (compare with Figure 4)"))


if __name__ == "__main__":
    main()
