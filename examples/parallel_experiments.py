"""Parallel, resumable experiment sweeps with the repro runtime.

Runs a reduced Figure-4-style grid twice:

1. fanned out over four workers with results persisted into a JSON result
   store, and
2. again — which resumes from the store and recomputes nothing.

Usage::

    PYTHONPATH=src python examples/parallel_experiments.py [store_dir]
"""

from __future__ import annotations

import sys
import tempfile
import time

from repro.config import RuntimeConfig
from repro.core.experiment import ExperimentConfig
from repro.core.report import format_table, store_report
from repro.core.splits import DatasetSplit, SplitSampling
from repro.experiments.common import job_context
from repro.lqo.registry import MAIN_EVALUATION_METHODS
from repro.runtime.parallel import ParallelExperimentRunner
from repro.runtime.result_store import ResultStore

METHODS = tuple(m for m in MAIN_EVALUATION_METHODS if m in ("postgres", "bao"))


def demo_splits(workload_name: str) -> list[DatasetSplit]:
    """Two small fixed splits so the demo finishes in seconds (a real sweep
    would use ``repro.core.splits.generate_splits`` over the full workload)."""
    return [
        DatasetSplit(workload_name, SplitSampling.RANDOM, 0,
                     train_ids=("1a", "2a", "3a", "6a"), test_ids=("1b", "2b", "4a")),
        DatasetSplit(workload_name, SplitSampling.RANDOM, 1,
                     train_ids=("6b", "8a", "17a", "10a"), test_ids=("3a", "1a", "20a")),
    ]


def main(store_dir: str | None = None) -> None:
    if store_dir is None:
        store_dir = tempfile.mkdtemp(prefix="repro-results-")
    context = job_context(scale=0.25)
    splits = demo_splits(context.workload.name)
    store = ResultStore(store_dir)
    runner = ParallelExperimentRunner(
        context.database,
        context.workload,
        experiment_config=ExperimentConfig(
            optimizer_kwargs={"bao": {"training_passes": 1}},
            executions_per_query=2,
        ),
        runtime_config=RuntimeConfig(workers=4),
        result_store=store,
    )

    print(f"running {len(METHODS) * len(splits)} tasks on 4 workers "
          f"(store: {store_dir}) ...")
    start = time.perf_counter()
    results = runner.run_grid(METHODS, splits)
    print(f"first sweep: {time.perf_counter() - start:.1f} s")
    print(format_table([r.summary_row() for r in results], title="Sweep results"))

    start = time.perf_counter()
    runner.run_grid(METHODS, splits)
    print(f"second sweep (resumed from store): {time.perf_counter() - start:.3f} s, "
          f"{store.loaded_count} tasks loaded instead of re-run")
    print()
    print(store_report(store, title="Report regenerated from the store alone"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
