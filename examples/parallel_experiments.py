"""Parallel, resumable experiment sweeps with the repro runtime.

Runs a reduced Figure-4-style grid twice:

1. fanned out over ``REPRO_BENCH_WORKERS`` workers (default 4) with results
   persisted into a JSON result store, and
2. again — which resumes from the store and recomputes nothing (the script
   exits non-zero if any task was re-run, so CI can assert resume-skip).

The database ships to workers as a :class:`DatabaseSpec` when the executor is
a process pool (``REPRO_BENCH_EXECUTOR=process``): each worker rebuilds or
reuses the database from its per-process registry instead of unpickling the
table data per task.

Usage::

    PYTHONPATH=src python examples/parallel_experiments.py [store_dir]

Environment: ``REPRO_BENCH_WORKERS``, ``REPRO_BENCH_EXECUTOR``
(``thread``/``process``/``serial``), ``REPRO_BENCH_STORE`` (used when no
``store_dir`` argument is given).
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

from repro.config import RuntimeConfig
from repro.core.experiment import ExperimentConfig
from repro.core.report import format_table, store_report
from repro.core.splits import DatasetSplit, SplitSampling
from repro.experiments.common import job_context
from repro.lqo.registry import MAIN_EVALUATION_METHODS
from repro.runtime.parallel import ParallelExperimentRunner
from repro.runtime.result_store import ResultStore

METHODS = tuple(m for m in MAIN_EVALUATION_METHODS if m in ("postgres", "bao"))


def demo_splits(workload_name: str) -> list[DatasetSplit]:
    """Two small fixed splits so the demo finishes in seconds (a real sweep
    would use ``repro.core.splits.generate_splits`` over the full workload)."""
    return [
        DatasetSplit(workload_name, SplitSampling.RANDOM, 0,
                     train_ids=("1a", "2a", "3a", "6a"), test_ids=("1b", "2b", "4a")),
        DatasetSplit(workload_name, SplitSampling.RANDOM, 1,
                     train_ids=("6b", "8a", "17a", "10a"), test_ids=("3a", "1a", "20a")),
    ]


def main(store_dir: str | None = None) -> None:
    if store_dir is None:
        store_dir = os.environ.get("REPRO_BENCH_STORE") or tempfile.mkdtemp(
            prefix="repro-results-"
        )
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))
    executor_kind = os.environ.get("REPRO_BENCH_EXECUTOR", "thread")
    context = job_context(scale=0.25)
    splits = demo_splits(context.workload.name)
    store = ResultStore(store_dir)
    runner = ParallelExperimentRunner(
        context.dispatch_source,
        context.workload,
        experiment_config=ExperimentConfig(
            optimizer_kwargs={"bao": {"training_passes": 1}},
            executions_per_query=2,
        ),
        runtime_config=RuntimeConfig(workers=workers, executor_kind=executor_kind),
        result_store=store,
    )
    tasks = runner.tasks_for(METHODS, splits)
    if executor_kind == "process" and runner.uses_spec_dispatch:
        import pickle

        payload = len(pickle.dumps(runner.spec_payload(tasks[0])))
        print(f"spec dispatch active: {payload} bytes pickled per task")

    print(f"running {len(tasks)} tasks on {workers} {executor_kind} workers "
          f"(store: {store_dir}) ...")
    start = time.perf_counter()
    results = runner.run_tasks(tasks)
    print(f"first sweep: {time.perf_counter() - start:.1f} s")
    print(format_table([r.summary_row() for r in results], title="Sweep results"))

    # Every task must now be resumable from disk, whichever process wrote it.
    pending = [
        task for task in tasks
        if not store.exists(runner.task_key(task), runner.task_fingerprint(task))
    ]
    assert not pending, f"store is missing {len(pending)} completed tasks"
    # Recompute detection must not rely on result values (deterministic timing
    # makes a re-run byte-identical) or file counts (a recompute overwrites
    # the same path): snapshot the stored files' write times instead.
    files_before = {path: path.stat().st_mtime_ns for path in store.completed_files()}
    assert len(files_before) == len(tasks)

    start = time.perf_counter()
    rerun = runner.run_tasks(tasks)
    print(f"second sweep (resumed from store): {time.perf_counter() - start:.3f} s")
    files_after = {path: path.stat().st_mtime_ns for path in store.completed_files()}
    assert files_after == files_before, "resume recomputed and re-wrote result files"
    assert [r.to_dict() for r in rerun] == [r.to_dict() for r in results], (
        "resumed results differ from the first sweep"
    )
    print(f"resume-skip verified: {len(tasks)} tasks served from the store")
    print()
    print(store_report(store, title="Report regenerated from the store alone"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
