"""Covariate-shift study: train Bao on IMDB-50% and evaluate on the full IMDB.

Reproduces the Section 8.3 experiment end to end: generate the full synthetic
IMDB and its Bernoulli-halved copy (cascaded through every foreign key), train
one Bao model on each, and compare their per-query execution times on the full
database using a base-query split.

Run with ``python examples/covariate_shift_study.py``.
"""

from repro.core.experiment import ExperimentConfig
from repro.core.report import format_table
from repro.core.splits import generate_split
from repro.experiments.common import imdb_half_database, job_context
from repro.core.covariate_shift import run_covariate_shift_study


def main() -> None:
    scale = 0.35
    context = job_context(scale=scale)
    half = imdb_half_database(scale=scale)
    print(f"full IMDB:   {context.database.total_rows():>8d} rows")
    print(f"IMDB-50%:    {half.total_rows():>8d} rows "
          f"(title halved, movie/cast tables cascade-shrunk)")

    split = generate_split(context.workload, "base_query", seed=0)
    result = run_covariate_shift_study(
        context.database,
        half,
        context.workload,
        split,
        experiment_config=ExperimentConfig(optimizer_kwargs={"bao": {"training_passes": 1}}),
    )

    rows = []
    for timing in result.shifted_model.timings:
        reference = result.full_model.timing_for(timing.query_id)
        rows.append(
            {
                "query": timing.query_id,
                "bao_full_ms": round(reference.execution_time_ms, 2),
                "bao_50_ms": round(timing.execution_time_ms, 2),
                "slowdown": round(result.slowdown_factors.get(timing.query_id, 1.0), 2),
            }
        )
    rows.sort(key=lambda r: -r["slowdown"])
    print()
    print(format_table(rows, title="Bao-Full vs Bao-50, evaluated on the full database"))
    print()
    print("top regressions:", result.top_regressions(3))
    print("improvements:   ", result.top_improvements(3))


if __name__ == "__main__":
    main()
