"""Quickstart: build a database, plan a query classically and with Bao.

Run with ``python examples/quickstart.py``.
"""

from repro import quickstart_environment
from repro.core.splits import generate_split
from repro.executor.explain import explain_analyze_text
from repro.lqo import create_optimizer


def main() -> None:
    # 1. Synthetic IMDB + the 113-query JOB-style workload + an optimizer environment.
    context, env = quickstart_environment(scale=0.4)
    workload = context.workload
    print(context.database.describe())
    print()
    print(workload.describe())

    # 2. Plan and execute one query with the classical (PostgreSQL-style) optimizer.
    query = workload.by_id("2a")
    postgres = create_optimizer("postgres", env)
    postgres.fit([])
    planned = postgres.plan_query(query)
    measured = env.execute_plan(query.bound, planned.plan, runs=3, cold_start=True)
    print()
    print(f"--- PostgreSQL plan for {query.query_id} "
          f"(planning {planned.planning_time_ms:.2f} ms, "
          f"execution {measured.reported_ms:.2f} ms) ---")
    print(explain_analyze_text(planned.plan, measured.result, planned.planning_time_ms))

    # 3. Train Bao on a random 80/20 split and plan the same query.
    split = generate_split(workload, "random", seed=0)
    bao = create_optimizer("bao", env, training_passes=1)
    report = bao.fit(split.train_queries(workload)[:30])  # a subset keeps the demo quick
    bao_planned = bao.plan_query(query)
    bao_measured = env.execute_plan(query.bound, bao_planned.plan, runs=3, cold_start=True)
    print()
    print(f"--- Bao ({report.training_time_s:.1f} s training, "
          f"chose hint set {bao_planned.metadata['chosen_arm']!r}, "
          f"execution {bao_measured.reported_ms:.2f} ms) ---")
    print(bao_planned.plan.pretty())

    print()
    winner = "Bao" if bao_measured.reported_ms < measured.reported_ms else "PostgreSQL"
    print(f"Faster on {query.query_id}: {winner}")


if __name__ == "__main__":
    main()
