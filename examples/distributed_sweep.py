"""Distributed experiment sweep with a killed worker, resume and store merge.

Exercises the full multi-host runtime on one machine:

1. A coordinator fans a reduced Figure-4-style grid out through the work
   queue onto ``REPRO_BENCH_WORKERS`` (default 2) local worker processes,
   with live progress telemetry (a machine-readable snapshot every
   ``REPRO_BENCH_PROGRESS`` seconds, default 2) and coordinator-side work
   stealing between queue shards.  With ``REPRO_BENCH_TRANSPORT=file``
   (default) the queue is a directory on a shared filesystem and the workers
   write the **sharded** result store themselves; with
   ``REPRO_BENCH_TRANSPORT=tcp`` the coordinator serves the queue over a
   socket, no queue/store directory is shared at all, and workers upload
   results back inside their ack frames.  With ``REPRO_QUEUE_SECRET`` set,
   every TCP frame is HMAC-signed — the script then also asserts that a
   client *without* the secret is rejected before anything is unpickled.
2. Once both workers are mid-task, one of them is SIGKILLed — its lease stops
   being renewed, the coordinator's expiry sweep re-queues its claim, and the
   surviving worker finishes the grid.
3. The same sweep runs again: everything resumes from the store, nothing is
   recomputed (asserted via stored-file mtimes).
4. The shards are merged into a flat store at ``<store>-merged``, every task
   is loaded back under its context fingerprint, and the whole grid is
   checked byte-identical against serial execution.  The final progress
   snapshot is saved as a store artifact (``artifacts/progress-final.json``).

The script exits non-zero if any of those properties is violated, so CI can
gate on it (the ``bench-distributed`` and ``bench-distributed-tcp`` jobs).

Usage::

    PYTHONPATH=src python examples/distributed_sweep.py [store_dir]

Environment: ``REPRO_BENCH_WORKERS`` (local workers, default 2),
``REPRO_BENCH_TRANSPORT`` (``file``/``tcp``, default ``file``),
``REPRO_BENCH_PROGRESS`` (snapshot interval seconds, default 2),
``REPRO_QUEUE_SECRET`` (tcp frame-signing secret, authentication off when
unset), ``REPRO_BENCH_STORE`` (used when no ``store_dir`` argument is given).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.config import RuntimeConfig
from repro.core.experiment import ExperimentConfig
from repro.core.report import store_report
from repro.core.splits import DatasetSplit, SplitSampling
from repro.experiments.common import distributed_runtime, job_context
from repro.runtime.netqueue import NetWorkQueue, QueueAuthError, QueueServer
from repro.runtime.parallel import ParallelExperimentRunner

METHODS = ("postgres", "bao")

EXPERIMENT_CONFIG = ExperimentConfig(
    optimizer_kwargs={"bao": {"training_passes": 1}},
    executions_per_query=2,
)


def demo_splits(workload_name: str) -> list[DatasetSplit]:
    """Two small fixed splits so the demo finishes in minutes, not hours."""
    return [
        DatasetSplit(workload_name, SplitSampling.RANDOM, 0,
                     train_ids=("1a", "2a", "3a", "6a"), test_ids=("1b", "2b", "4a")),
        DatasetSplit(workload_name, SplitSampling.RANDOM, 1,
                     train_ids=("6b", "8a", "17a", "10a"), test_ids=("3a", "1a", "20a")),
    ]


def result_json(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def assert_unauthenticated_client_rejected(runner: ParallelExperimentRunner) -> bool:
    """With a queue secret set, a secret-less client must be turned away
    before any of its bytes are unpickled.  Returns whether the check ran
    (it needs the sweep's TCP server to be up)."""
    queue = runner._distributed_queue
    if not isinstance(queue, QueueServer):
        return False
    intruder = NetWorkQueue(queue.url, secret="", retries=0)  # explicitly unkeyed
    try:
        intruder.stats()
    except QueueAuthError as exc:
        print(f"unauthenticated client rejected as expected: {exc}")
        return True
    raise AssertionError("a client without REPRO_QUEUE_SECRET was accepted by the queue server")


def kill_one_worker_mid_sweep(
    runner: ParallelExperimentRunner, coordinator: threading.Thread
) -> bool:
    """Wait until every local worker holds a claim and one task is done, then
    SIGKILL one worker.  Returns whether a worker was killed.

    Progress is read through the coordinator's queue transport handle
    (``runner._distributed_queue``), which works identically for the file
    queue (directory counts) and the TCP server (in-memory counts).
    """
    deadline = time.monotonic() + 600
    while time.monotonic() < deadline and coordinator.is_alive():
        queue = runner._distributed_queue
        procs = [p for p in runner._distributed_procs if p.poll() is None]
        if queue is not None and len(procs) >= 2:
            stats = queue.stats()
            if stats.claimed >= len(procs) and stats.done >= 1:
                victim = procs[0]
                victim.kill()  # SIGKILL: no cleanup, its lease renewals just stop
                print(f"killed worker pid {victim.pid} mid-sweep "
                      f"({stats.done} tasks done, {stats.claimed} claims held)")
                return True
        time.sleep(0.05)
    return False


def main(store_dir: str | None = None) -> None:
    if store_dir is None:
        store_dir = os.environ.get("REPRO_BENCH_STORE") or tempfile.mkdtemp(
            prefix="repro-distributed-"
        )
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))
    transport = os.environ.get("REPRO_BENCH_TRANSPORT", "file")
    progress_interval = float(os.environ.get("REPRO_BENCH_PROGRESS", "2"))
    secured = bool(os.environ.get("REPRO_QUEUE_SECRET"))
    assert transport in ("file", "tcp"), f"unknown REPRO_BENCH_TRANSPORT {transport!r}"
    context = job_context(scale=0.25)
    splits = demo_splits(context.workload.name)
    snapshots: list = []

    def on_progress(snapshot) -> None:
        snapshots.append(snapshot)
        print(f"progress {snapshot.describe()}")

    runner = ParallelExperimentRunner(
        context.dispatch_source,
        context.workload,
        experiment_config=EXPERIMENT_CONFIG,
        # A short lease keeps the dead worker's re-queue snappy in the demo; a
        # real sweep would leave the 60 s default.  The tcp transport binds an
        # ephemeral coordinator port: workers share no directory with it.
        runtime_config=distributed_runtime(
            store_dir,
            workers=workers,
            shard_count=4,
            lease_timeout_s=3.0,
            queue_url="tcp://127.0.0.1:0" if transport == "tcp" else None,
            progress_interval_s=progress_interval,
        ),
        progress_callback=on_progress,
    )
    store = runner.result_store
    tasks = runner.tasks_for(METHODS, splits, repeats=2)
    print(f"running {len(tasks)} tasks on {workers} queue workers "
          f"({transport} transport{', HMAC-authenticated' if secured else ''}, "
          f"sharded store: {store_dir}) ...")

    # --- sweep 1: coordinator in a thread, one worker killed mid-sweep -----
    outcome: dict[str, list] = {}
    coordinator = threading.Thread(
        target=lambda: outcome.setdefault("results", runner.run_tasks(tasks)), daemon=True
    )
    start = time.perf_counter()
    coordinator.start()
    auth_checked = False
    if secured and transport == "tcp":
        # While the sweep runs, an unkeyed client must bounce off the server.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and not auth_checked and coordinator.is_alive():
            if runner._distributed_queue is not None:
                auth_checked = assert_unauthenticated_client_rejected(runner)
            time.sleep(0.05)
    killed = kill_one_worker_mid_sweep(runner, coordinator)
    coordinator.join(timeout=1800)
    assert not coordinator.is_alive(), "coordinator did not finish"
    assert "results" in outcome, "sweep produced no results"
    results = outcome["results"]
    assert killed, (
        "never caught both workers busy, so nothing was killed "
        "(was the store already populated? the crash demo needs a fresh store dir)"
    )
    print(f"first sweep survived the kill in {time.perf_counter() - start:.1f} s; "
          f"{runner._distributed_requeued} expired claim(s) re-queued; "
          f"{runner._distributed_stolen} pending task(s) stolen between shards; "
          f"{store.describe()}")
    assert runner._distributed_requeued >= 1, "the dead worker's claim was never re-queued"

    # --- progress telemetry: at least one valid machine-readable snapshot ---
    assert snapshots, "the sweep emitted no progress snapshot"
    final_snapshot = snapshots[-1]
    assert final_snapshot.done == final_snapshot.total == len(tasks), (
        f"final snapshot incomplete: {final_snapshot.describe()}"
    )
    json.loads(final_snapshot.to_json())  # must round-trip as plain JSON
    store.save_artifact("progress-final", final_snapshot.to_dict())
    print(f"emitted {len(snapshots)} progress snapshot(s); final: {final_snapshot.describe()}")
    if secured and transport == "tcp":
        assert auth_checked, "the unauthenticated-client check never ran"
    if transport == "tcp":
        # No shared queue directory exists, and every result entered the store
        # through the coordinator's upload sink, not through the workers.
        assert not (store.root / "queue").exists(), "tcp sweep created a queue directory"
        assert store.stored_count >= len(tasks), (
            "coordinator-side store counters show the workers wrote the store directly"
        )
        print(f"tcp transport: coordinator persisted {store.stored_count} uploaded result(s); "
              "no queue/store directory was shared with any worker")

    # --- sweep 2: full resume, nothing recomputed --------------------------
    files_before = {path: path.stat().st_mtime_ns for path in store.completed_files()}
    assert len(files_before) == len(tasks)
    start = time.perf_counter()
    rerun = runner.run_tasks(tasks)
    print(f"second sweep (resumed from shards): {time.perf_counter() - start:.3f} s")
    files_after = {path: path.stat().st_mtime_ns for path in store.completed_files()}
    assert files_after == files_before, "resume recomputed and re-wrote result files"
    assert [result_json(r) for r in rerun] == [result_json(r) for r in results]

    # --- merge + serial equivalence ----------------------------------------
    merged_dir = str(Path(store_dir).with_name(Path(store_dir).name + "-merged"))
    merged = store.merge(merged_dir)
    manifest = store.manifest()
    print(f"merged {len(files_before)} results from {manifest['shard_count']} shards "
          f"into {merged_dir} ({len(manifest['context_fingerprints'])} context fingerprint(s))")
    serial = ParallelExperimentRunner(
        context.dispatch_source,
        context.workload,
        experiment_config=EXPERIMENT_CONFIG,
        runtime_config=RuntimeConfig(workers=1, executor_kind="serial"),
    )
    expected = serial.run_tasks(tasks)
    for task, reference in zip(tasks, expected):
        key, fingerprint = runner.task_key(task), runner.task_fingerprint(task)
        assert merged.exists(key, fingerprint), f"merged store is missing {key.describe()}"
        assert result_json(merged.load(key, fingerprint)) == result_json(reference), (
            f"distributed result for {key.describe()} differs from serial execution"
        )
    print(f"distributed results byte-identical to serial for all {len(tasks)} tasks")
    print()
    print(store_report(merged, title="Report regenerated from the merged store"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
