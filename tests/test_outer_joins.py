"""Outer-join semantics and reorderability: both engines, planner, hints.

Satellite coverage for the outer-join refactor:

* **NULL-sentinel ambiguity** — NULL-extended join output must never be
  conflated with stored NULLs: stored NULL keys never match but still
  NULL-extend, ``IS NULL`` scan filters see only stored NULLs (the dialect
  applies WHERE filters below joins), and column aggregates drop
  NULL-extended rows while ``COUNT(*)`` keeps them.  Expectations are
  hand-computed from the raw stored codes with numpy — independent of every
  engine and of the fuzz oracle.
* **Reorderability** — enumeration (exhaustive, DP, greedy, GEQO) never emits
  a plan that reorders across an outer-join edge: the inner-only enumerators
  refuse outer queries outright, and every plan the planner or
  ``enumerate_join_trees`` produces carries the outer folds on top in syntax
  order with the nullable side as the right scan.  Hint sets naming an
  illegal order fail loudly with :class:`HintError`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.statistics import NULL_SENTINEL
from repro.config import PostgresConfig
from repro.errors import HintError, OptimizerError
from repro.executor.engine import create_engine
from repro.executor.operators import NULL_ROW_ID, gather_rows, take_rows
from repro.optimizer.cost_model import CostModel
from repro.optimizer.enumeration import (
    DPEnumerator,
    enumerate_join_trees,
    greedy_plan,
    left_deep_plan_from_order,
)
from repro.optimizer.geqo import GeqoEnumerator
from repro.optimizer.planner import Planner
from repro.plans.hints import HintSet
from repro.plans.physical import AggregateNode, JoinKind, JoinNode, JoinType, ScanNode, SortNode
from repro.sql.binder import bind_sql
from tests.test_columnar import assert_engines_agree
from tests.test_executor import _tiny_database


def run_both(sql: str) -> list[tuple]:
    """Execute on both engines (fresh databases), assert equality, return rows."""
    db_row, db_col = _tiny_database(), _tiny_database()
    q_row = bind_sql(sql, db_row.schema, name="row")
    q_col = bind_sql(sql, db_col.schema, name="col")
    result_row = create_engine(db_row, kind="row").execute(q_row, Planner(db_row).plan(q_row))
    result_col = create_engine(db_col, kind="columnar").execute(q_col, Planner(db_col).plan(q_col))
    assert result_row.rows == result_col.rows, sql
    assert result_row.metrics.__dict__ == result_col.metrics.__dict__, sql
    assert result_row.execution_time_ms == result_col.execution_time_ms, sql
    return result_row.rows


OUTER_SQLS = [
    "SELECT COUNT(*) FROM parent AS p LEFT JOIN child AS c ON p.id = c.parent_id",
    "SELECT COUNT(*) FROM child AS c FULL OUTER JOIN link AS l ON c.parent_id = l.parent_id",
    "SELECT COUNT(*), MIN(c.kind) FROM parent AS p "
    "JOIN child AS c ON p.id = c.parent_id "
    "LEFT JOIN link AS l ON p.id = l.parent_id WHERE c.kind > 3",
    "SELECT p.category, COUNT(*) FROM parent AS p "
    "LEFT JOIN child AS c ON p.id = c.parent_id GROUP BY p.category",
]


# ---------------------------------------------------------------------------
# NULL-sentinel ambiguity (satellite: stored NULLs vs NULL-extended output)
# ---------------------------------------------------------------------------

class TestNullSentinelRules:
    def test_virtual_row_id_decodes_to_null_without_touching_storage(self):
        db = _tiny_database()
        data = db.table_data("child")
        before = data.column("parent_id").copy()
        row_ids = np.array([0, NULL_ROW_ID, 1], dtype=np.int64)
        values = gather_rows(data, "parent_id", row_ids)
        assert values[1] == NULL_SENTINEL
        assert values[0] == int(before[0]) and values[2] == int(before[1])
        # The virtual id never writes the sentinel into the table.
        assert np.array_equal(data.column("parent_id"), before)
        # Re-indexing keeps NULL-extended positions NULL-extended instead of
        # wrapping to the last element the way raw numpy indexing would.
        taken = take_rows(row_ids, np.array([1, 2, NULL_ROW_ID], dtype=np.int64))
        assert list(taken) == [NULL_ROW_ID, 1, NULL_ROW_ID]

    def test_stored_null_keys_never_match_but_still_null_extend(self):
        db = _tiny_database()
        parent_ids = db.table_data("child").column("parent_id")
        n_child = parent_ids.size
        n_stored_null = int((parent_ids == NULL_SENTINEL).sum())
        assert n_stored_null > 0, "fixture must be NULL-heavy"
        # Every child appears exactly once: non-NULL FKs match exactly one
        # parent id, stored-NULL FKs never match and NULL-extend instead.
        rows = run_both(
            "SELECT COUNT(*) FROM child AS c LEFT JOIN parent AS p ON c.parent_id = p.id"
        )
        assert rows == [(n_child,)]

    def test_is_null_filter_sees_only_stored_nulls(self):
        db = _tiny_database()
        parent_ids = db.table_data("child").column("parent_id")
        n_stored_null = int((parent_ids == NULL_SENTINEL).sum())
        sql = (
            "SELECT COUNT(*) FROM child AS c LEFT JOIN parent AS p ON c.parent_id = p.id "
            "WHERE c.parent_id IS {}NULL"
        )
        # The filter runs at scan level, below the join: IS NULL selects the
        # stored NULLs (which then NULL-extend), never the join's output NULLs.
        assert run_both(sql.format("")) == [(n_stored_null,)]
        assert run_both(sql.format("NOT ")) == [(int(parent_ids.size) - n_stored_null,)]

    def test_null_extended_rows_counted_by_star_but_not_by_column_aggregates(self):
        db = _tiny_database()
        child = db.table_data("child")
        parent = db.table_data("parent")
        parent_ids = child.column("parent_id")
        # Restrict the parent side so some non-NULL FKs also go unmatched.
        surviving = parent.column("id")[parent.column("score") > 5]
        matched = int(np.isin(parent_ids, surviving).sum())
        rows = run_both(
            "SELECT COUNT(*), COUNT(p.id), MIN(p.score) "
            "FROM child AS c LEFT JOIN parent AS p ON c.parent_id = p.id "
            "WHERE p.score > 5"
        )
        count_star, count_parent, min_score = rows[0]
        assert count_star == int(parent_ids.size)  # NULL-extended rows counted
        assert count_parent == matched  # ...but not by COUNT(p.id)
        assert min_score == int(parent.column("score")[parent.column("score") > 5].min())

    def test_full_join_unmatched_both_sides(self):
        db = _tiny_database()
        child_keys = db.table_data("child").column("parent_id")
        link_keys = db.table_data("link").column("parent_id")
        child_real = child_keys[child_keys != NULL_SENTINEL]
        link_real = link_keys[link_keys != NULL_SENTINEL]
        matches = int(sum((child_real == key).sum() for key in link_real))
        unmatched_child = int((~np.isin(child_keys, link_real)).sum())
        unmatched_link = int((~np.isin(link_keys, child_real)).sum())
        rows = run_both(
            "SELECT COUNT(*) FROM child AS c FULL OUTER JOIN link AS l "
            "ON c.parent_id = l.parent_id"
        )
        assert rows == [(matches + unmatched_child + unmatched_link,)]

    def test_chained_outer_joins_re_extend_nullable_keys(self):
        # A NULL-extended mk-style alias carries sentinel keys into the next
        # fold, which must simply re-extend (never match, never wrap).
        rows = run_both(
            "SELECT COUNT(*), COUNT(l.id) FROM parent AS p "
            "LEFT JOIN child AS c ON p.id = c.parent_id "
            "LEFT JOIN link AS l ON c.parent_id = l.parent_id"
        )
        assert rows[0][0] >= rows[0][1]

    def test_engines_agree_on_every_outer_plan_shape(self):
        assert_engines_agree(_tiny_database, OUTER_SQLS)


# ---------------------------------------------------------------------------
# Reorderability (satellite: outer edges pin operand order)
# ---------------------------------------------------------------------------

OUTER_QUERY = (
    "SELECT COUNT(*) FROM parent AS p "
    "JOIN child AS c ON p.id = c.parent_id "
    "LEFT JOIN link AS l ON p.id = l.parent_id"
)


def strip_decorations(plan):
    while isinstance(plan, (SortNode, AggregateNode)):
        plan = plan.child
    return plan


def assert_outer_folds_pinned(plan, query) -> None:
    """Outer folds sit on top in syntax order, nullable side on the right."""
    node = strip_decorations(plan)
    for edge in reversed(query.outer_edges):
        assert isinstance(node, JoinNode), "outer fold missing"
        expected = JoinKind.LEFT if edge.join_type == "left" else JoinKind.FULL
        assert node.join_kind is expected
        assert isinstance(node.right, ScanNode)
        assert node.right.alias == edge.nullable_alias
        node = node.left
    assert node.aliases == frozenset(query.core_aliases)
    for sub in node.walk():
        if isinstance(sub, JoinNode):
            assert sub.join_kind is JoinKind.INNER


class TestReorderability:
    def test_inner_only_enumerators_refuse_outer_queries(self):
        db = _tiny_database()
        query = bind_sql(OUTER_QUERY, db.schema)
        cost_model = CostModel(db)
        with pytest.raises(OptimizerError, match="only enumerates inner joins"):
            DPEnumerator(cost_model).plan(query)
        with pytest.raises(OptimizerError, match="only enumerates inner joins"):
            greedy_plan(query, cost_model)
        with pytest.raises(OptimizerError, match="only enumerates inner joins"):
            left_deep_plan_from_order(query, cost_model, ["p", "c", "l"])
        with pytest.raises(OptimizerError, match="only enumerates inner joins"):
            GeqoEnumerator(cost_model).plan(query)

    def test_every_enumerated_shape_pins_the_outer_edges(self):
        db = _tiny_database()
        query = bind_sql(
            "SELECT COUNT(*) FROM parent AS p "
            "JOIN child AS c ON p.id = c.parent_id "
            "LEFT JOIN link AS l ON p.id = l.parent_id "
            "FULL OUTER JOIN parent AS q ON c.parent_id = q.id",
            db.schema,
        )
        plans = list(enumerate_join_trees(query, CostModel(db)))
        assert plans, "enumeration must still cover the inner core"
        for plan in plans:
            assert_outer_folds_pinned(plan, query)

    def test_planner_pins_outer_edges_across_strategies(self):
        for config in (None, PostgresConfig(geqo_threshold=2)):
            db = _tiny_database()
            query = bind_sql(OUTER_QUERY, db.schema, name=f"cfg_{config is None}")
            planner = Planner(db, config=config)
            result = planner.plan_with_info(query)
            assert_outer_folds_pinned(result.plan, query)
            if config is not None:
                # geqo_threshold=2 routes the 2-relation inner core to GEQO;
                # the outer edge stays pinned regardless of core strategy.
                assert result.strategy == "geqo"

    def test_exact_order_hint_across_outer_edge_fails_loudly(self):
        db = _tiny_database()
        query = bind_sql(OUTER_QUERY, db.schema)
        planner = Planner(db)
        illegal = HintSet.from_join_order(["l", "p", "c"], name="outer-first")
        with pytest.raises(HintError, match="outer-join edge"):
            planner.plan(query, illegal)
        legal = HintSet.from_join_order(["c", "p", "l"], name="core-then-outer")
        plan = planner.plan(query, legal)
        assert_outer_folds_pinned(plan, query)

    def test_prefix_hint_naming_outer_alias_fails_loudly(self):
        db = _tiny_database()
        query = bind_sql(OUTER_QUERY, db.schema)
        planner = Planner(db)
        with pytest.raises(HintError, match="outer-join aliases"):
            planner.plan(query, HintSet.from_leading_prefix(["l"], name="bad-prefix"))
        plan = planner.plan(query, HintSet.from_leading_prefix(["c"], name="core-prefix"))
        assert_outer_folds_pinned(plan, query)

    def test_full_join_rejects_nested_loop_hint(self):
        db = _tiny_database()
        query = bind_sql(
            "SELECT COUNT(*) FROM parent AS p FULL OUTER JOIN child AS c ON p.id = c.parent_id",
            db.schema,
        )
        planner = Planner(db)
        forced = HintSet(
            join_methods={frozenset({"p", "c"}): JoinType.NESTED_LOOP}, name="nl-full"
        )
        with pytest.raises(HintError, match="not supported for FULL JOIN"):
            planner.plan(query, forced)
        # LEFT joins may nested-loop; the plan keeps kind and method.
        left_query = bind_sql(
            "SELECT COUNT(*) FROM parent AS p LEFT JOIN child AS c ON p.id = c.parent_id",
            db.schema,
        )
        plan = strip_decorations(
            planner.plan(
                left_query,
                HintSet(join_methods={frozenset({"p", "c"}): JoinType.NESTED_LOOP}, name="nl"),
            )
        )
        assert isinstance(plan, JoinNode)
        assert plan.join_kind is JoinKind.LEFT
        assert plan.join_type is JoinType.NESTED_LOOP
