"""Self-tests for ``tools.reprolint`` (fixtures in ``tests/reprolint_fixtures/``).

Each rule family gets a bad fixture (every violation caught, at the right
rule id) and a good fixture (zero false positives on the idioms the codebase
actually uses).  On top of the snippets, two anchor tests pin the linter to
the live tree: ``src/`` must lint clean with the project config, and a copy
of the real columnar engine with one buffer-pool charge removed must fail
PAR — the acceptance contract of the rule.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import LintConfig, default_config, lint_paths  # noqa: E402
from tools.reprolint.config import ParityPair  # noqa: E402
from tools.reprolint.engine import lint_file  # noqa: E402
from tools.reprolint.findings import RULE_CATALOG  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "reprolint_fixtures"


def rules_of(findings):
    return [finding.rule for finding in findings]


def det_config(**overrides) -> LintConfig:
    return LintConfig(det_paths=("*/reprolint_fixtures/det_*.py",), **overrides)


class TestDetRules:
    def test_bad_fixture_catches_every_family_member(self):
        findings = lint_file(FIXTURES / "det_bad.py", det_config())
        assert rules_of(findings).count("DET101") == 2  # time.time + time.time_ns
        assert rules_of(findings).count("DET102") == 1  # datetime.now
        assert rules_of(findings).count("DET103") == 3  # random.random/shuffle, np shuffle
        assert rules_of(findings).count("DET104") == 2  # Random(), default_rng()
        assert len(findings) == 8

    def test_good_fixture_is_clean_with_allowlist(self):
        config = det_config(
            det_allow=(("*/reprolint_fixtures/det_good.py", "allowlisted_probe"),),
        )
        assert lint_file(FIXTURES / "det_good.py", config) == []

    def test_allowlist_is_per_function_not_per_file(self):
        # Without the allowlist entry the same fixture has exactly one finding.
        findings = lint_file(FIXTURES / "det_good.py", det_config())
        assert rules_of(findings) == ["DET101"]
        assert "allowlist" not in findings[0].message  # message is the plain complaint

    def test_suppressions_waive_by_rule_family_and_all(self):
        findings = lint_file(FIXTURES / "det_suppressed.py", det_config())
        # Only the deliberately unsuppressed call survives.
        assert len(findings) == 1
        assert findings[0].rule == "DET101"
        flagged_line = (FIXTURES / "det_suppressed.py").read_text().splitlines()[
            findings[0].line - 1
        ]
        assert "does not leak here" in flagged_line


class TestSecRules:
    def test_unallowlisted_loads_fail_including_aliases(self):
        findings = lint_file(FIXTURES / "sec_bad.py", LintConfig())
        assert rules_of(findings) == ["SEC201", "SEC201", "SEC201"]
        assert "aliased_read" in findings[1].message

    def test_verified_module_demands_domination(self):
        config = LintConfig(
            sec_allow=(("*/reprolint_fixtures/sec_bad.py", "recv_frame_unverified"),),
            sec_verified_paths=("*/reprolint_fixtures/sec_bad.py",),
        )
        findings = lint_file(FIXTURES / "sec_bad.py", config)
        # Every unpickle in a verified module needs a gate (SEC202 fires on
        # all three); the two cache readers additionally fail SEC201, while
        # the allowlisted decoder dodges SEC201 but not SEC202.
        assert sorted(rules_of(findings)) == ["SEC201", "SEC201"] + ["SEC202"] * 3
        assert any(
            finding.rule == "SEC202" and "recv_frame_unverified" in finding.message
            for finding in findings
        )

    def test_gated_decoder_passes_both_rules(self):
        config = LintConfig(
            sec_allow=(("*/reprolint_fixtures/sec_good.py", "recv_frame"),),
            sec_verified_paths=("*/reprolint_fixtures/sec_good.py",),
        )
        assert lint_file(FIXTURES / "sec_good.py", config) == []


class TestConcRules:
    CONFIG = LintConfig(conc_paths=("*/reprolint_fixtures/conc_*.py",))

    def test_bad_fixture_catches_every_mutation_kind(self):
        findings = lint_file(FIXTURES / "conc_bad.py", self.CONFIG)
        assert sorted(rules_of(findings)) == ["CONC401"] * 5 + ["CONC402"] * 3
        messages = " | ".join(finding.message for finding in findings)
        assert "self._count" in messages and "self._by_worker" in messages
        assert "self._log" in messages and ".append()" in messages

    def test_unlocked_reads_flag_only_mutated_attributes(self):
        findings = lint_file(FIXTURES / "conc_bad.py", self.CONFIG)
        reads = [finding for finding in findings if finding.rule == "CONC402"]
        # bump()'s RHS read, total() and busiest() — but never the mutation
        # receivers themselves (those are CONC401's findings).
        assert len(reads) == 3
        assert {"total", "busiest", "bump"} == {
            finding.message.split()[0].split(".")[1] for finding in reads
        }

    def test_good_fixture_is_clean(self):
        assert lint_file(FIXTURES / "conc_good.py", self.CONFIG) == []


class TestParRules:
    def par_config(self, columnar_name: str) -> LintConfig:
        return LintConfig(
            par_row_module="*/reprolint_fixtures/par_row.py",
            par_columnar_module=f"*/reprolint_fixtures/{columnar_name}",
            par_pairs=(
                ParityPair("scan", "execute_scan", "columnar_scan"),
                ParityPair("join", "execute_join", "columnar_join"),
            ),
        )

    def lint_pair(self, columnar_name: str):
        files = [FIXTURES / "par_row.py", FIXTURES / columnar_name]
        return lint_paths(files, self.par_config(columnar_name))

    def test_mirrored_pair_is_clean(self):
        assert self.lint_pair("par_col_ok.py") == []

    def test_removed_charge_and_drifted_arguments_both_fail(self):
        findings = self.lint_pair("par_col_deparified.py")
        assert rules_of(findings) == ["PAR301", "PAR301"]
        by_op = {finding.message.split("'")[1]: finding.message for finding in findings}
        assert "missing charge" in by_op["scan"]  # dropped access_fraction
        assert "access_fraction" in by_op["scan"]
        assert "charge_join_type" in by_op["join"]  # swapped argument order
        assert "right_size, left_size" in by_op["join"]

    def test_renamed_operator_fails_par302(self):
        findings = self.lint_pair("par_col_missing.py")
        assert "PAR302" in rules_of(findings)
        assert any("columnar_scan" in finding.message for finding in findings)

    def outer_par_config(self, columnar_name: str) -> LintConfig:
        """The fixture config extended with the outer-join operator pair."""
        base = self.par_config(columnar_name)
        return LintConfig(
            par_row_module=base.par_row_module,
            par_columnar_module=base.par_columnar_module,
            par_pairs=base.par_pairs
            + (ParityPair("outer_join", "execute_outer_join", "columnar_outer_join"),),
        )

    def test_outer_join_pair_is_clean_when_mirrored(self):
        files = [FIXTURES / "par_row.py", FIXTURES / "par_col_ok.py"]
        assert lint_paths(files, self.outer_par_config("par_col_ok.py")) == []

    def test_outer_join_charge_divergence_fails_par301(self):
        """Swapping the charge's operand sizes in the outer join alone trips PAR."""
        files = [FIXTURES / "par_row.py", FIXTURES / "par_col_outer_bad.py"]
        findings = lint_paths(files, self.outer_par_config("par_col_outer_bad.py"))
        assert rules_of(findings) == ["PAR301"]
        assert "outer_join" in findings[0].message
        assert "charge_join_type" in findings[0].message
        # Without the outer pair configured, the same drifted fixture passes —
        # the divergence lives only in the newly paired operator.
        assert lint_paths(files, self.par_config("par_col_outer_bad.py")) == []

    def test_half_missing_engine_pair_is_reported(self):
        config = self.par_config("par_col_ok.py")
        findings = lint_paths([FIXTURES / "par_row.py"], config)
        assert rules_of(findings) == ["PAR302"]
        assert "incomplete" in findings[0].message


class TestLiveCodebase:
    def test_src_is_clean_under_the_project_config(self):
        assert lint_paths([REPO_ROOT / "src"], default_config()) == []

    def test_removing_a_buffer_pool_charge_from_one_engine_fails_par(self, tmp_path):
        """The acceptance contract: de-parify the real columnar engine, PAR trips."""
        executor = tmp_path / "repro" / "executor"
        executor.mkdir(parents=True)
        shutil.copy(REPO_ROOT / "src" / "repro" / "executor" / "operators.py", executor)
        columnar = (REPO_ROOT / "src" / "repro" / "executor" / "columnar.py").read_text()
        needle = "access = buffer_pool.access_pages(node.table, data.page_count, sequential=True)"
        assert needle in columnar, "columnar scan charge moved; update this test"
        (executor / "columnar.py").write_text(
            columnar.replace(needle, "access = _no_charge()", 1), encoding="utf-8"
        )
        findings = lint_paths([tmp_path], default_config())
        assert "PAR301" in rules_of(findings)
        par = next(finding for finding in findings if finding.rule == "PAR301")
        assert "scan" in par.message and "access_pages" in par.message

    def test_unverified_network_unpickle_fails_sec(self, tmp_path):
        """A new pickle.loads dropped into netqueue.py fails SEC201 and SEC202."""
        runtime = tmp_path / "repro" / "runtime"
        runtime.mkdir(parents=True)
        source = (REPO_ROOT / "src" / "repro" / "runtime" / "netqueue.py").read_text()
        source += (
            "\n\ndef recv_fast(sock):\n"
            "    return pickle.loads(sock.recv(65536))\n"
        )
        (runtime / "netqueue.py").write_text(source, encoding="utf-8")
        findings = [
            finding
            for finding in lint_paths([tmp_path], default_config())
            if "recv_fast" in finding.message
        ]
        assert sorted(rules_of(findings)) == ["SEC201", "SEC202"]


class TestCli:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "tools.reprolint", *args],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )

    def test_clean_tree_exits_zero(self):
        result = self.run_cli("src")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 findings" in result.stderr

    def test_bad_fixture_exits_nonzero_with_findings(self, tmp_path):
        # SEC201 is path-agnostic under the project config, so the CLI must
        # fail on a copy of the bad fixture.  (The fixture directory itself is
        # in the project skip list so `make lint` stays clean — hence the copy.)
        bad = tmp_path / "sec_bad.py"
        shutil.copy(FIXTURES / "sec_bad.py", bad)
        result = self.run_cli(str(bad))
        assert result.returncode == 1
        assert "SEC201" in result.stdout

    def test_json_output_is_machine_readable(self, tmp_path):
        # A violation the *project* config catches wherever the file lives:
        # an unallowlisted pickle.loads.
        bad = tmp_path / "loader.py"
        bad.write_text("import pickle\n\ndef f(b):\n    return pickle.loads(b)\n")
        result = self.run_cli("--json", str(bad))
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload and payload[0]["rule"] == "SEC201"
        assert payload[0]["line"] == 4

    def test_missing_path_is_a_usage_error(self):
        result = self.run_cli("definitely/not/a/path")
        assert result.returncode == 2

    def test_list_rules_covers_the_catalog(self):
        result = self.run_cli("--list-rules")
        assert result.returncode == 0
        for rule in RULE_CATALOG:
            assert rule in result.stdout
