"""Row-vs-columnar engine equivalence: the property suite behind docs/EXECUTOR.md.

The columnar engine is only allowed to be *faster* than the row engine — never
different.  Every test here executes identical plans through both engines (on
independently built databases, so buffer-pool state never leaks between them)
and asserts byte-equivalence of

* the result rows (values and order),
* per-node actual cardinalities,
* every field of the accumulated :class:`OperatorMetrics`,
* the simulated execution time (exact float equality: both engines own a
  TimingModel seeded identically and must draw the same noise sequence),
* timeout/error outcomes.

Covered shapes: every join-tree shape of small queries (left-deep, bushy,
zigzag), index/bitmap/seq scans, index nested loops with NULL probe keys,
multi-predicate joins with post-join filters, cross products, sorts, group-by
aggregation, projection with LIMIT — plus the edge cases the row engine's
history says matter: empty tables, all-NULL join keys, and a join predicate
ahead of the index-nestloop probe.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.imdb import generate_imdb
from repro.catalog.stack import generate_stack
from repro.catalog.schema import Column, Index, Schema, Table
from repro.catalog.statistics import NULL_SENTINEL
from repro.config import ENGINE_KINDS, SIMULATION_CONFIG
from repro.errors import ExecutionError
from repro.executor.columnar import ColumnarExecutionEngine
from repro.executor.engine import ExecutionEngine, create_engine
from repro.optimizer.cost_model import CostModel
from repro.optimizer.enumeration import enumerate_join_trees
from repro.optimizer.planner import Planner
from repro.plans.hints import NO_HINTS, HintSet, OperatorToggles
from repro.sql.binder import bind_sql
from repro.storage.database import Database
from repro.storage.table_data import TableData
from repro.workloads import build_job_workload, build_stack_workload

from tests.test_executor import _tiny_database, oracle_tuples


# ---------------------------------------------------------------------------
# Comparison harness
# ---------------------------------------------------------------------------

def assert_results_equal(row_result, col_result, row_plan, col_plan, context=""):
    """Byte-equivalence of two ExecutionResults (plans walked for node rows)."""
    assert row_result.rows == col_result.rows, context
    assert row_result.row_count == col_result.row_count, context
    assert row_result.timed_out == col_result.timed_out, context
    assert row_result.error == col_result.error, context
    assert row_result.metrics.__dict__ == col_result.metrics.__dict__, context
    # Exact equality: identical metrics through identically seeded noise.
    assert row_result.execution_time_ms == col_result.execution_time_ms, context
    row_nodes = [
        row_result.node_actual_rows[id(n)]
        for n in row_plan.walk()
        if id(n) in row_result.node_actual_rows
    ]
    col_nodes = [
        col_result.node_actual_rows[id(n)]
        for n in col_plan.walk()
        if id(n) in col_result.node_actual_rows
    ]
    assert row_nodes == col_nodes, context


def assert_engines_agree(db_factory, sqls, hints=NO_HINTS, allow_cross_products=False):
    """Enumerate every join-tree shape of each query and compare both engines.

    ``db_factory`` must build a *fresh* database per call: the two engines may
    not share a buffer pool, or cache state from one would leak into the
    other's timing.
    """
    compared = 0
    for sql in sqls:
        db_row, db_col = db_factory(), db_factory()
        engine_row = create_engine(db_row, kind="row")
        engine_col = create_engine(db_col, kind="columnar")
        q_row = bind_sql(sql, db_row.schema, name="row")
        q_col = bind_sql(sql, db_col.schema, name="col")
        plans_row = list(
            enumerate_join_trees(
                q_row, CostModel(db_row), hints, allow_cross_products=allow_cross_products
            )
        )
        plans_col = list(
            enumerate_join_trees(
                q_col, CostModel(db_col), hints, allow_cross_products=allow_cross_products
            )
        )
        assert len(plans_row) == len(plans_col)
        for plan_row, plan_col in zip(plans_row, plans_col):
            result_row = engine_row.execute(q_row, plan_row)
            result_col = engine_col.execute(q_col, plan_col)
            assert_results_equal(
                result_row, result_col, plan_row, plan_col, context=sql
            )
            compared += 1
    assert compared > 0


# ---------------------------------------------------------------------------
# Exhaustive plan shapes on the NULL-heavy oracle database
# ---------------------------------------------------------------------------

TINY_SQLS = [
    "SELECT COUNT(*) FROM parent AS p, child AS c WHERE p.id = c.parent_id",
    # NULLs on both sides of the equi-join (child and link FKs are nullable).
    "SELECT COUNT(*) FROM child AS c, link AS l WHERE c.parent_id = l.parent_id",
    "SELECT COUNT(*) FROM parent AS p, child AS c, link AS l "
    "WHERE p.id = c.parent_id AND p.id = l.parent_id",
    "SELECT COUNT(*) FROM parent AS p, child AS c "
    "WHERE p.id = c.parent_id AND c.kind > 3 AND p.category = 1",
    "SELECT COUNT(*) FROM child AS c WHERE c.kind < 5",
    "SELECT COUNT(*) FROM child AS c WHERE c.parent_id IS NULL",
    "SELECT p.category, COUNT(*) FROM parent AS p, child AS c "
    "WHERE p.id = c.parent_id GROUP BY p.category",
    "SELECT c.kind FROM parent AS p, child AS c "
    "WHERE p.id = c.parent_id AND p.score > 2 ORDER BY c.kind LIMIT 7",
    "SELECT p.id, c.id FROM parent AS p, child AS c "
    "WHERE p.id = c.parent_id ORDER BY p.id",
]


class TestTinyPlanShapes:
    def test_every_join_tree_shape_is_equivalent(self):
        assert_engines_agree(_tiny_database, TINY_SQLS)

    def test_forced_nestloop_probes_are_equivalent(self):
        hints = HintSet(toggles=OperatorToggles(hashjoin=False, mergejoin=False))
        assert_engines_agree(
            _tiny_database,
            [
                "SELECT COUNT(*) FROM link AS l, child AS c WHERE l.parent_id = c.parent_id",
                "SELECT COUNT(*) FROM parent AS p, child AS c WHERE p.id = c.parent_id",
            ],
            hints=hints,
        )

    def test_cross_products_are_equivalent(self):
        assert_engines_agree(
            _tiny_database,
            ["SELECT COUNT(*) FROM parent AS p, child AS c"],
            allow_cross_products=True,
        )

    def test_columnar_matches_nested_loop_oracle(self):
        """Belt and braces: the columnar engine against the brute-force oracle."""
        db = _tiny_database()
        engine = create_engine(db, kind="columnar")
        planner = Planner(db)
        for sql in TINY_SQLS[:4]:
            query = bind_sql(sql, db.schema, name="oracle")
            plan = planner.plan(query)
            count = int(engine.execute(query, plan).rows[0][0])
            assert count == len(oracle_tuples(db, query)), sql


# ---------------------------------------------------------------------------
# Edge cases
# ---------------------------------------------------------------------------

def _edge_case_database(child_rows: np.ndarray | None, parent_rows: int) -> Database:
    """Two-table database with a controllable (possibly empty / all-NULL) FK."""
    parent = Table("parent", columns=[Column("id"), Column("score")])
    child = Table(
        "child",
        columns=[Column("id"), Column("parent_id")],
        indexes=[Index(table="child", column="parent_id")],
    )
    schema = Schema("edge", tables=[parent, child])
    if child_rows is None:
        child_rows = np.empty(0, dtype=np.int64)
    n_child = int(child_rows.size)
    tables = {
        "parent": TableData(
            table=parent,
            columns={
                "id": np.arange(1, parent_rows + 1, dtype=np.int64),
                "score": (np.arange(parent_rows, dtype=np.int64) * 7) % 13,
            },
        ),
        "child": TableData(
            table=child,
            columns={
                "id": np.arange(1, n_child + 1, dtype=np.int64),
                "parent_id": child_rows,
            },
        ),
    }
    return Database(schema=schema, tables=tables, config=SIMULATION_CONFIG)


class TestEdgeCases:
    def test_empty_table_scan_and_join(self):
        sqls = [
            "SELECT COUNT(*) FROM child AS c",
            "SELECT COUNT(*) FROM parent AS p, child AS c WHERE p.id = c.parent_id",
            "SELECT COUNT(*) FROM parent AS p, child AS c "
            "WHERE p.id = c.parent_id AND p.score > 3",
        ]
        assert_engines_agree(lambda: _edge_case_database(None, 8), sqls)

    def test_all_null_key_join_is_empty_in_both_engines(self):
        all_null = np.full(10, NULL_SENTINEL, dtype=np.int64)
        sql = "SELECT COUNT(*) FROM parent AS p, child AS c WHERE p.id = c.parent_id"
        assert_engines_agree(lambda: _edge_case_database(all_null, 8), [sql])
        db = _edge_case_database(all_null, 8)
        engine = create_engine(db, kind="columnar")
        query = bind_sql(sql, db.schema, name="allnull")
        plan = Planner(db).plan(query)
        assert engine.execute(query, plan).rows == [(0,)]

    def test_join_predicate_ahead_of_probe_is_equivalent(self):
        """The PR-3 regression shape: probe runs on predicates[1], and the
        unenforced predicates[0] must survive as a post-join filter in both
        engines."""

        def build() -> Database:
            src = Table("src", columns=[Column("id"), Column("x"), Column("grp")])
            item = Table(
                "item",
                columns=[Column("id"), Column("grp"), Column("val")],
                indexes=[Index(table="item", column="grp")],
            )
            schema = Schema("probe-order", tables=[src, item])
            return Database(
                schema=schema,
                tables={
                    "src": TableData(
                        table=src,
                        columns={
                            "id": np.array([1, 2, 3, 4, 5], dtype=np.int64),
                            "x": np.array([10, 30, 10, 1, 10], dtype=np.int64),
                            "grp": np.array([1, 1, 2, 2, NULL_SENTINEL], dtype=np.int64),
                        },
                    ),
                    "item": TableData(
                        table=item,
                        columns={
                            "id": np.array([1, 2, 3, 4], dtype=np.int64),
                            "grp": np.array([1, 1, 2, NULL_SENTINEL], dtype=np.int64),
                            "val": np.array([10, 30, 10, 10], dtype=np.int64),
                        },
                    ),
                },
                config=SIMULATION_CONFIG,
            )

        sql = "SELECT COUNT(*) FROM src AS s, item AS i WHERE s.x = i.val AND s.grp = i.grp"
        assert_engines_agree(build, [sql])
        hints = HintSet(toggles=OperatorToggles(hashjoin=False, mergejoin=False))
        assert_engines_agree(build, [sql], hints=hints)
        # And both agree with the brute-force truth.
        db = build()
        query = bind_sql(sql, db.schema, name="probe")
        expected = len(oracle_tuples(db, query))
        for kind in ENGINE_KINDS:
            db_k = build()
            engine = create_engine(db_k, kind=kind)
            plan = Planner(db_k).plan(query, hints)
            assert int(engine.execute(query, plan).rows[0][0]) == expected


# ---------------------------------------------------------------------------
# Real workloads: JOB on IMDB, Stack
# ---------------------------------------------------------------------------

WORKLOAD_SCALE = 0.2


class TestWorkloadEquivalence:
    @pytest.mark.parametrize(
        "generate,build_workload,seed",
        [
            (generate_imdb, build_job_workload, 7),
            (generate_stack, build_stack_workload, 11),
        ],
        ids=["imdb-job", "stack"],
    )
    def test_planner_plans_are_equivalent(self, generate, build_workload, seed):
        db_row = generate(scale=WORKLOAD_SCALE, seed=seed, config=SIMULATION_CONFIG)
        db_col = generate(scale=WORKLOAD_SCALE, seed=seed, config=SIMULATION_CONFIG)
        engine_row = create_engine(db_row, kind="row")
        engine_col = create_engine(db_col, kind="columnar")
        planner_row = Planner(db_row)
        planner_col = Planner(db_col)
        workload = build_workload(db_row.schema)
        workload_col = build_workload(db_col.schema)
        # A deterministic sample keeps the suite fast while touching many
        # query shapes; the benchmark harness covers the full workload.
        sample = list(range(0, len(workload.queries), 7))
        for position in sample:
            query_row = workload.queries[position]
            query_col = workload_col.queries[position]
            plan_row = planner_row.plan(query_row.bound)
            plan_col = planner_col.plan(query_col.bound)
            result_row = engine_row.execute(query_row.bound, plan_row)
            result_col = engine_col.execute(query_col.bound, plan_col)
            assert_results_equal(
                result_row, result_col, plan_row, plan_col, context=query_row.query_id
            )


# ---------------------------------------------------------------------------
# Hypothesis: random tables, random filters, every join-tree shape
# ---------------------------------------------------------------------------

@st.composite
def random_database_and_filters(draw):
    """A random two-table database plus random filter literals.

    The FK column mixes genuine matches, dangling references and NULLs so the
    join exercises duplicate keys, misses and SQL NULL semantics at once.
    """
    n_parent = draw(st.integers(min_value=1, max_value=12))
    n_child = draw(st.integers(min_value=0, max_value=25))
    fk_values = draw(
        st.lists(
            st.one_of(
                st.integers(min_value=1, max_value=n_parent),
                st.integers(min_value=n_parent + 1, max_value=n_parent + 3),
                st.just(NULL_SENTINEL),
            ),
            min_size=n_child,
            max_size=n_child,
        )
    )
    vals = draw(
        st.lists(
            st.one_of(st.integers(min_value=0, max_value=6), st.just(NULL_SENTINEL)),
            min_size=n_child,
            max_size=n_child,
        )
    )
    score_cutoff = draw(st.integers(min_value=0, max_value=6))
    val_op = draw(st.sampled_from(["=", ">", "<=", "!="]))
    val_literal = draw(st.integers(min_value=0, max_value=6))

    parent = Table("parent", columns=[Column("id"), Column("score")])
    child = Table(
        "child",
        columns=[Column("id"), Column("parent_id"), Column("val")],
        indexes=[Index(table="child", column="parent_id")],
    )
    schema = Schema("hypo", tables=[parent, child])
    db_builder = lambda: Database(  # noqa: E731 - rebuilt per engine
        schema=schema,
        tables={
            "parent": TableData(
                table=parent,
                columns={
                    "id": np.arange(1, n_parent + 1, dtype=np.int64),
                    "score": (np.arange(n_parent, dtype=np.int64) * 5) % 7,
                },
            ),
            "child": TableData(
                table=child,
                columns={
                    "id": np.arange(1, n_child + 1, dtype=np.int64),
                    "parent_id": np.asarray(fk_values, dtype=np.int64),
                    "val": np.asarray(vals, dtype=np.int64),
                },
            ),
        },
        config=SIMULATION_CONFIG,
    )
    sql = (
        "SELECT COUNT(*) FROM parent AS p, child AS c "
        f"WHERE p.id = c.parent_id AND p.score > {score_cutoff} "
        f"AND c.val {val_op} {val_literal}"
    )
    return db_builder, sql


class TestHypothesisEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(random_database_and_filters())
    def test_random_tables_all_plan_shapes(self, case):
        db_builder, sql = case
        assert_engines_agree(db_builder, [sql])

    @settings(max_examples=10, deadline=None)
    @given(random_database_and_filters())
    def test_random_tables_match_oracle(self, case):
        db_builder, sql = case
        db = db_builder()
        query = bind_sql(sql, db.schema, name="hypo")
        expected = len(oracle_tuples(db, query))
        engine = create_engine(db, kind="columnar")
        plan = Planner(db).plan(query)
        assert int(engine.execute(query, plan).rows[0][0]) == expected


# ---------------------------------------------------------------------------
# Engine selection plumbing
# ---------------------------------------------------------------------------

class TestEngineSelection:
    def test_engine_kinds_constant(self):
        assert ENGINE_KINDS == ("columnar", "row")

    def test_create_engine_kinds(self):
        db = _tiny_database()
        assert isinstance(create_engine(db, kind="columnar"), ColumnarExecutionEngine)
        row = create_engine(db, kind="row")
        assert isinstance(row, ExecutionEngine)
        assert not isinstance(row, ColumnarExecutionEngine)
        assert create_engine(db).kind == "columnar"
        assert row.kind == "row"

    def test_create_engine_rejects_unknown_kind(self):
        db = _tiny_database()
        with pytest.raises(ExecutionError, match="unknown engine kind"):
            create_engine(db, kind="gpu")

    def test_environment_engine_selection(self):
        from repro.lqo.base import LQOEnvironment

        db = _tiny_database()
        assert isinstance(LQOEnvironment(db).engine, ColumnarExecutionEngine)
        assert not isinstance(
            LQOEnvironment(_tiny_database(), engine="row").engine, ColumnarExecutionEngine
        )

    def test_execution_protocol_engine_selection(self):
        from repro.core.execution_protocol import ExecutionProtocol

        assert isinstance(
            ExecutionProtocol(_tiny_database()).engine, ColumnarExecutionEngine
        )
        protocol = ExecutionProtocol(_tiny_database(), engine="row")
        assert not isinstance(protocol.engine, ColumnarExecutionEngine)

    def test_experiment_config_engine_env_default(self, monkeypatch):
        from repro.core.experiment import ExperimentConfig

        assert ExperimentConfig().engine == "columnar"
        monkeypatch.setenv("REPRO_ENGINE", "row")
        assert ExperimentConfig().engine == "row"
        # The engine participates in the config fingerprint (conservative:
        # stored results never silently cross engine kinds).
        monkeypatch.delenv("REPRO_ENGINE")
        assert ExperimentConfig(engine="row").fingerprint() != ExperimentConfig(
            engine="columnar"
        ).fingerprint()

    def test_experiment_runner_timings_identical_across_engines(self):
        """End-to-end: the full measurement pipeline (planner, protocol,
        deterministic timing) reports identical numbers under both engines."""
        from repro.core.experiment import ExperimentConfig, ExperimentRunner

        def run(kind: str):
            db = generate_imdb(scale=0.1, seed=3, config=SIMULATION_CONFIG)
            workload = build_job_workload(db.schema)
            runner = ExperimentRunner(
                db,
                workload,
                experiment_config=ExperimentConfig(
                    deterministic_timing=True, engine=kind
                ),
            )
            result = runner.run_postgres_only(workload.queries[:6])
            return [
                (
                    t.query_id,
                    t.inference_time_ms,
                    t.planning_time_ms,
                    t.execution_time_ms,
                    t.timed_out,
                )
                for t in result.timings
            ]

        assert run("row") == run("columnar")
