"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.schema import ColumnType
from repro.catalog.statistics import NULL_SENTINEL, analyze_column
from repro.core.stats import bootstrap_confidence_interval, relative_difference
from repro.executor.operators import join_match_positions
from repro.ml.losses import q_error
from repro.storage.buffer_pool import BufferPool
from repro.storage.index import OrderedIndex

small_ints = st.integers(min_value=-50, max_value=50)


class TestJoinMatchingProperties:
    @given(
        st.lists(small_ints, max_size=40),
        st.lists(small_ints, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_equal_bruteforce(self, left, right):
        left_arr = np.asarray(left, dtype=np.int64)
        right_arr = np.asarray(right, dtype=np.int64)
        lp, rp = join_match_positions(left_arr, right_arr)
        got = sorted(zip(lp.tolist(), rp.tolist()))
        expected = sorted(
            (i, j)
            for i in range(len(left))
            for j in range(len(right))
            if left[i] == right[j]
        )
        assert got == expected

    @given(st.lists(small_ints, min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_self_join_contains_diagonal(self, values):
        arr = np.asarray(values, dtype=np.int64)
        lp, rp = join_match_positions(arr, arr)
        pairs = set(zip(lp.tolist(), rp.tolist()))
        assert all((i, i) in pairs for i in range(len(values)))


class TestIndexProperties:
    @given(st.lists(small_ints, min_size=1, max_size=60), small_ints)
    @settings(max_examples=60, deadline=None)
    def test_lookup_eq_complete_and_sound(self, values, needle):
        arr = np.asarray(values, dtype=np.int64)
        index = OrderedIndex("t", "c", arr)
        rows = set(index.lookup_eq(int(needle)).row_ids.tolist())
        expected = {i for i, v in enumerate(values) if v == needle}
        assert rows == expected

    @given(st.lists(small_ints, min_size=1, max_size=60), small_ints, small_ints)
    @settings(max_examples=60, deadline=None)
    def test_range_lookup_matches_predicate(self, values, a, b):
        low, high = min(a, b), max(a, b)
        arr = np.asarray(values, dtype=np.int64)
        index = OrderedIndex("t", "c", arr)
        rows = set(index.lookup_range(low=low, high=high).row_ids.tolist())
        expected = {i for i, v in enumerate(values) if low <= v <= high}
        assert rows == expected


class TestStatisticsProperties:
    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_selectivities_bounded(self, values):
        arr = np.asarray(values, dtype=np.int64)
        stats = analyze_column("c", arr, ColumnType.INTEGER)
        for needle in values[:5]:
            assert 0.0 <= stats.equality_selectivity(float(needle)) <= 1.0
        if stats.min_value is not None:
            for op in ("<", "<=", ">", ">="):
                assert 0.0 <= stats.range_selectivity(op, float(values[0])) <= 1.0

    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=5, max_size=100),
        st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_null_frac_matches_injected_nulls(self, values, null_fraction):
        arr = np.asarray(values, dtype=np.int64)
        n_null = int(len(arr) * null_fraction)
        if n_null:
            arr = arr.copy()
            arr[:n_null] = NULL_SENTINEL
        stats = analyze_column("c", arr, ColumnType.INTEGER)
        assert stats.null_frac == n_null / len(arr)


class TestBufferPoolProperties:
    @given(
        st.integers(min_value=1, max_value=32),
        st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(min_value=0, max_value=20)),
            max_size=60,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_residency_never_exceeds_capacity(self, capacity, accesses):
        pool = BufferPool(capacity)
        for relation, pages in accesses:
            pool.access_pages(relation, pages)
            assert pool.resident_pages <= capacity
        assert pool.stats.hits + pool.stats.misses == sum(p for _, p in accesses)

    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=16))
    @settings(max_examples=30, deadline=None)
    def test_second_access_hits_when_capacity_sufficient(self, capacity, pages):
        pool = BufferPool(capacity)
        pool.access_pages("t", pages)
        second = pool.access_pages("t", pages)
        if pages <= capacity:
            assert second.misses == 0


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=0.1, max_value=1e5), min_size=2, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_bootstrap_ci_ordered(self, values):
        ci = bootstrap_confidence_interval(np.asarray(values), n_resamples=200, seed=1)
        assert ci.low <= ci.mean + 1e-9
        assert ci.mean <= ci.high + 1e-9

    @given(st.floats(min_value=0.01, max_value=1e4), st.floats(min_value=0.01, max_value=1e4))
    @settings(max_examples=50, deadline=None)
    def test_q_error_at_least_one_and_symmetric(self, a, b):
        err = float(q_error(np.array([a]), np.array([b]))[0])
        assert err >= 1.0
        assert err == float(q_error(np.array([b]), np.array([a]))[0])

    @given(st.floats(min_value=0.1, max_value=100.0), st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=30, deadline=None)
    def test_relative_difference_antisymmetric_in_sign(self, before, after):
        diff = relative_difference(before, after)
        assert (diff > 0) == (after < before) or diff == 0


class TestSplitProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_split_partition(self, seed):
        # hypothesis cannot inject pytest fixtures; build the workload lazily once.
        from repro.catalog.imdb import imdb_schema
        from repro.core.splits import generate_split
        from repro.workloads import build_job_workload

        global _CACHED_WORKLOAD
        try:
            workload = _CACHED_WORKLOAD
        except NameError:
            workload = build_job_workload(imdb_schema())
            globals()["_CACHED_WORKLOAD"] = workload
        split = generate_split(workload, "random", seed=seed)
        assert not set(split.train_ids) & set(split.test_ids)
        assert set(split.train_ids) | set(split.test_ids) == set(workload.query_ids())
