"""Shared fixtures: small synthetic databases, workloads and environments."""

from __future__ import annotations

import pytest

from repro.catalog.imdb import generate_imdb, imdb_schema
from repro.catalog.stack import generate_stack
from repro.config import SIMULATION_CONFIG
from repro.lqo.base import LQOEnvironment
from repro.workloads import build_job_workload, build_stack_workload

#: Small scale keeps the whole suite fast while preserving skew and fan-out.
TEST_SCALE = 0.25


@pytest.fixture(scope="session")
def imdb_db():
    """Session-scoped synthetic IMDB database."""
    return generate_imdb(scale=TEST_SCALE, seed=7, config=SIMULATION_CONFIG)


@pytest.fixture(scope="session")
def stack_db():
    """Session-scoped synthetic StackExchange database."""
    return generate_stack(scale=TEST_SCALE, seed=11, config=SIMULATION_CONFIG)


@pytest.fixture(scope="session")
def job_workload(imdb_db):
    """The 113-query JOB-style workload bound against the IMDB schema."""
    return build_job_workload(imdb_db.schema)


@pytest.fixture(scope="session")
def stack_workload(stack_db):
    return build_stack_workload(stack_db.schema)


@pytest.fixture(scope="session")
def schema_only():
    """IMDB schema without any data (for binder/encoder structural tests)."""
    return imdb_schema()


@pytest.fixture()
def env(imdb_db):
    """A fresh optimizer environment per test (buffer pool state isolated)."""
    return LQOEnvironment(imdb_db, seed=0)


@pytest.fixture(scope="session")
def session_env(imdb_db):
    """A shared environment for read-only tests that need trained-ish models."""
    return LQOEnvironment(imdb_db, seed=0)
