"""Tests for the benchmarking framework: splits, protocol, runner, stats, ablations."""

import numpy as np
import pytest

from repro.core.ablations import geqo_ablation, plan_shape_analysis, scan_type_ablation
from repro.core.execution_protocol import ExecutionProtocol
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.metrics import MethodRunResult, QueryTiming, geometric_mean_speedup
from repro.core.report import bullet_list, format_key_values, format_table, to_markdown
from repro.core.splits import DatasetSplit, SplitSampling, generate_split, generate_splits
from repro.core.stats import (
    bootstrap_confidence_interval,
    linear_regression_r2,
    mann_whitney_u_test,
    relative_difference,
)
from repro.errors import SplitError


class TestSplits:
    def test_leave_one_out_one_test_query_per_family(self, job_workload):
        split = generate_split(job_workload, SplitSampling.LEAVE_ONE_OUT, seed=1)
        families = job_workload.families()
        test_by_family = {}
        for qid in split.test_ids:
            family = job_workload.by_id(qid).family
            test_by_family[family] = test_by_family.get(family, 0) + 1
        assert all(count == 1 for count in test_by_family.values())
        assert len(test_by_family) == len(families)

    def test_random_split_80_20(self, job_workload):
        split = generate_split(job_workload, "random", seed=2)
        assert len(split.test_ids) == pytest.approx(0.2 * len(job_workload), abs=2)
        assert len(split.train_ids) + len(split.test_ids) == len(job_workload)

    def test_base_query_split_keeps_families_together(self, job_workload):
        split = generate_split(job_workload, SplitSampling.BASE_QUERY, seed=3)
        families = job_workload.families()
        test_set = set(split.test_ids)
        for family, queries in families.items():
            ids = {q.query_id for q in queries}
            assert ids <= test_set or not (ids & test_set)

    def test_splits_are_disjoint_and_complete(self, job_workload):
        for sampling in SplitSampling:
            split = generate_split(job_workload, sampling, seed=5)
            assert not set(split.train_ids) & set(split.test_ids)
            assert set(split.train_ids) | set(split.test_ids) == set(job_workload.query_ids())

    def test_different_seeds_differ(self, job_workload):
        a = generate_split(job_workload, "random", seed=1)
        b = generate_split(job_workload, "random", seed=2)
        assert set(a.test_ids) != set(b.test_ids)

    def test_generate_splits_count_and_independence(self, job_workload):
        splits = generate_splits(job_workload, "base_query", n_splits=3)
        assert len(splits) == 3
        assert len({tuple(s.test_ids) for s in splits}) > 1

    def test_invalid_fraction_raises(self, job_workload):
        with pytest.raises(SplitError):
            generate_split(job_workload, "random", test_fraction=1.5)

    def test_split_validation(self):
        with pytest.raises(SplitError):
            DatasetSplit("w", SplitSampling.RANDOM, 0, ("a",), ("a",))


class TestExecutionProtocol:
    def test_measure_query_three_runs(self, imdb_db, job_workload):
        protocol = ExecutionProtocol(imdb_db)
        measured = protocol.measure_query(job_workload.by_id("1a"))
        assert len(measured.execution_times_ms) == 3
        assert measured.reported_execution_ms <= measured.first_execution_ms * 1.1

    def test_robustness_aggregation_shape(self, imdb_db, job_workload):
        protocol = ExecutionProtocol(imdb_db)
        measurements = protocol.robustness_study(
            job_workload, executions=6, query_ids=["1a", "2a", "3a"]
        )
        aggregated = ExecutionProtocol.aggregate_robustness(measurements, max_k=5)
        assert set(aggregated) == {1, 2, 3, 4, 5}
        # big drop at k=1, much smaller afterwards
        assert aggregated[1]["mean"] > aggregated[2]["mean"] - 0.02

    def test_robustness_normalized_differences(self):
        from repro.core.execution_protocol import RobustnessMeasurement

        measurement = RobustnessMeasurement("q", [10.0, 8.0, 8.0])
        assert measurement.normalized_differences() == [pytest.approx(0.2), pytest.approx(0.0)]


class TestExperimentRunner:
    @pytest.fixture(scope="class")
    def tiny_split(self, job_workload):
        return DatasetSplit(
            workload_name=job_workload.name,
            sampling=SplitSampling.RANDOM,
            split_index=0,
            train_ids=("1a", "2a", "3a", "6a", "6b", "17a"),
            test_ids=("1b", "2b"),
        )

    @pytest.fixture(scope="class")
    def runner(self, imdb_db, job_workload):
        return ExperimentRunner(
            imdb_db,
            job_workload,
            experiment_config=ExperimentConfig(optimizer_kwargs={"bao": {"training_passes": 1}}),
        )

    def test_postgres_run(self, runner, tiny_split):
        result = runner.run_method("postgres", tiny_split)
        assert len(result.timings) == 2
        assert result.training_time_s == 0.0
        assert all(t.inference_time_ms == 0.0 for t in result.timings)
        assert all(t.execution_time_ms > 0 for t in result.timings)

    def test_bao_run_records_training_and_inference_in_planning(self, runner, tiny_split):
        result = runner.run_method("bao", tiny_split)
        assert result.training_time_s > 0.0
        assert result.executed_training_plans > 0
        # Bao integrates with the DBMS: inference is folded into planning time.
        assert all(t.inference_time_ms == 0.0 for t in result.timings)
        assert all(t.planning_time_ms > 0.5 for t in result.timings)

    def test_summary_rows(self, runner, tiny_split):
        result = runner.run_method("postgres", tiny_split)
        row = result.summary_row()
        assert row["method"] == "postgres"
        assert row["queries"] == 2
        assert row["end_to_end_ms"] >= row["execution_ms"]


class TestMetricsAndStats:
    def test_query_timing_end_to_end(self):
        timing = QueryTiming("q", "m", inference_time_ms=1.0, planning_time_ms=2.0, execution_time_ms=3.0)
        assert timing.end_to_end_ms == 6.0
        assert timing.pre_execution_ms == 3.0

    def test_geometric_mean_speedup(self):
        base = MethodRunResult("postgres", "s", "w", timings=[
            QueryTiming("a", "postgres", 0, 1, 9), QueryTiming("b", "postgres", 0, 1, 19),
        ])
        other = MethodRunResult("x", "s", "w", timings=[
            QueryTiming("a", "x", 0, 1, 4), QueryTiming("b", "x", 0, 1, 9),
        ])
        assert geometric_mean_speedup(base, other) == pytest.approx(2.0, rel=0.01)

    def test_mann_whitney_detects_difference(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 1.0, 100)
        b = rng.normal(2.0, 1.0, 100)
        assert mann_whitney_u_test(a, b).significant()
        assert not mann_whitney_u_test(a, a).significant()

    def test_regression_r2_negative_for_noise(self):
        rng = np.random.default_rng(1)
        x = rng.integers(3, 17, 60).astype(float)
        y = rng.lognormal(mean=3.0, sigma=1.0, size=60)
        result = linear_regression_r2(x, y)
        assert result.r_squared < 0.3

    def test_regression_r2_high_for_linear_data(self):
        x = np.arange(50, dtype=float)
        y = 3 * x + 1
        assert linear_regression_r2(x, y).r_squared > 0.95

    def test_bootstrap_ci_contains_mean(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        ci = bootstrap_confidence_interval(values, seed=1)
        assert ci.low <= ci.mean <= ci.high

    def test_relative_difference(self):
        assert relative_difference(10.0, 8.0) == pytest.approx(0.2)
        assert relative_difference(0.0, 5.0) == 0.0


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": None}]
        text = format_table(rows, title="T")
        assert text.splitlines()[0] == "T"
        assert "xy" in text and "-" in text

    def test_markdown_table(self):
        rows = [{"a": 1.5, "b": True}]
        md = to_markdown(rows, title="X")
        assert "| a | b |" in md and "| 1.500 | yes |" in md

    def test_key_values_and_bullets(self):
        assert "k : 1" in format_key_values({"k": 1})
        assert "- item" in bullet_list(["item"])

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])


class TestAblations:
    @pytest.fixture(scope="class")
    def small_query_ids(self):
        return ["1a", "2a", "3a", "4a", "32a"]

    def test_scan_type_ablation_runs(self, imdb_db, job_workload, small_query_ids):
        result = scan_type_ablation(
            imdb_db, job_workload, hot_samples=3, query_ids=small_query_ids
        )
        assert len(result.outcomes) == len(small_query_ids)
        for outcome in result.outcomes:
            assert outcome.baseline_ms > 0 and outcome.ablated_ms > 0
            assert 0.0 <= outcome.p_value <= 1.0

    def test_geqo_ablation_runs(self, imdb_db, job_workload, small_query_ids):
        result = geqo_ablation(imdb_db, job_workload, hot_samples=2, query_ids=small_query_ids)
        assert len(result.outcomes) == len(small_query_ids)

    def test_plan_shape_analysis(self, imdb_db, job_workload):
        result = plan_shape_analysis(
            imdb_db, job_workload, max_joins=3, max_plans_per_query=12
        )
        assert len(result.samples) > 0
        counts = result.shape_counts()
        assert sum(counts.values()) == len(result.samples)
        assert result.times_for(bushy=False).size > 0
