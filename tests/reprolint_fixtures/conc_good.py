"""CONC fixture: guarded mutations, constructor writes, lockless classes."""

import threading


class GuardedCounter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0  # __init__ is publication, exempt
        self._by_worker: dict[str, int] = {}
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.is_set():
            self.bump("w")

    def bump(self, worker: str) -> None:
        with self._lock:
            self._count += 1
            self._by_worker[worker] = self._count

    def snapshot(self) -> int:
        with self._lock:
            return self._count  # guarded read of mutated state: fine

    def _drain_locked(self) -> dict[str, int]:
        # *_locked suffix: caller-holds-the-lock convention, reads exempt
        return dict(self._by_worker)

    def describe(self) -> str:
        # _thread is only assigned in __init__ (immutable configuration),
        # so reading it unguarded is not a CONC402.
        return f"counter on {self._thread.name}"

    def halt(self) -> None:
        self._stop.set()  # Event carries its own synchronization


class PlainBag:
    """No lock attribute: CONC does not apply, mutate freely."""

    def __init__(self) -> None:
        self._items: list[int] = []

    def add(self, item: int) -> None:
        self._items.append(item)
