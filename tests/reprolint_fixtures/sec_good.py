"""SEC fixture: the verify-before-unpickle shapes that must pass.

Mirrors the structure of ``repro.runtime.netqueue.recv_frame``: one branch
authenticated by ``hmac.compare_digest``, one plaintext branch allowed only
after an explicit unauthenticated-frame rejection guard.
"""

import hashlib
import hmac
import pickle


class FrameAuthError(ConnectionError):
    pass


def recv_frame(sock, secret: bytes | None) -> object:
    header = sock.recv(6)
    signed = header[:2] == b"RS"
    length = int.from_bytes(header[2:6], "big")
    if signed:
        digest = sock.recv(32)
        blob = sock.recv(length)
        if secret is None:
            raise FrameAuthError("no secret configured")
        if not hmac.compare_digest(digest, hmac.new(secret, blob, hashlib.sha256).digest()):
            raise FrameAuthError("signature mismatch")
        return pickle.loads(blob)  # dominated by the compare_digest gate
    if secret is not None:
        raise FrameAuthError("unauthenticated frame rejected")
    return pickle.loads(sock.recv(length))  # dominated by the auth-raise guard
