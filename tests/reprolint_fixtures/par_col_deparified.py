"""PAR fixture: a columnar side that drifted from ``par_row`` twice over.

``columnar_scan`` dropped the ``access_fraction`` charge entirely (the
classic "optimized it away" regression) and ``columnar_join`` still charges,
but with different arguments — both must fail PAR301.
"""

from tests.reprolint_fixtures.par_row import charge_join_type


def columnar_scan(node, data, buffer_pool, metrics):
    access = buffer_pool.access_pages(node.table, data.page_count, sequential=True)
    metrics.pages_hit += access.hits
    # access_fraction charge removed: the buffer pool never hears about the
    # heap reads this operator simulates.
    return metrics


def columnar_join(database, node, left_size, right_size, work_mem, metrics):
    charge_join_type(database, node, right_size, left_size, work_mem, metrics)
    return metrics
