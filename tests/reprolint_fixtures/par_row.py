"""PAR fixture: the row-engine side of a miniature operator pair."""


def execute_scan(node, data, buffer_pool, metrics):
    access = buffer_pool.access_pages(node.table, data.page_count, sequential=True)
    metrics.pages_hit += access.hits
    access = buffer_pool.access_fraction(node.table, data.page_count, 0.5, sequential=False)
    metrics.random_pages_read += access.misses
    return metrics


def execute_join(database, node, left_size, right_size, work_mem, metrics):
    charge_join_type(database, node, left_size, right_size, work_mem, metrics)
    return metrics


def charge_join_type(database, node, left_size, right_size, work_mem, metrics):
    metrics.cpu_ops += left_size + right_size


def execute_outer_join(database, node, left_size, right_size, work_mem, metrics):
    charge_join_type(database, node, left_size, right_size, work_mem, metrics)
    metrics.tuples_out = left_size + right_size
    return metrics
