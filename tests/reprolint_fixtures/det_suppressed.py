"""DET fixture: violations waived by per-line suppressions."""

import time
from datetime import datetime


def exact_rule() -> float:
    return time.time()  # reprolint: disable=DET101


def family() -> str:
    return datetime.now().isoformat()  # reprolint: disable=DET


def everything() -> float:
    return time.time_ns()  # reprolint: disable=all


def still_flagged() -> float:
    return time.time()  # a suppression on another line does not leak here
