"""DET fixture: deterministic-path idioms that must all pass."""

import random
import time

import numpy as np


def lease_deadline(timeout_s: float) -> float:
    return time.monotonic() + timeout_s  # monotonic clocks are legal


def measured(fn) -> float:
    start = time.perf_counter()  # measured-timing mode is legal
    fn()
    return time.perf_counter() - start


def make_generators(seed: int):
    return random.Random(seed), np.random.default_rng(seed)


def task_noise(rng: np.random.Generator) -> float:
    return float(rng.normal())  # instance methods, not the global state


def allowlisted_probe() -> float:
    # Mirrors WorkQueue.filesystem_now: sanctioned via the config allowlist.
    return time.time()
