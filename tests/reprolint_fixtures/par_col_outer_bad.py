"""PAR fixture: scan and join mirror ``par_row``, but the outer join drifted.

``columnar_outer_join`` charges the join with the operand sizes swapped — the
exact regression the outer-join parity pair exists to catch: NULL extension
tempts an implementation to charge for the extended output instead of the
inputs, silently changing simulated timings on one engine only.
"""

from tests.reprolint_fixtures.par_row import charge_join_type


def columnar_scan(node, data, buffer_pool, metrics):
    access = buffer_pool.access_pages(node.table, data.page_count, sequential=True)
    metrics.pages_hit += access.hits
    access = buffer_pool.access_fraction(node.table, data.page_count, 0.5, sequential=False)
    metrics.random_pages_read += access.misses
    return metrics


def columnar_join(database, node, left_size, right_size, work_mem, metrics):
    charge_join_type(database, node, left_size, right_size, work_mem, metrics)
    return metrics


def columnar_outer_join(database, node, left_size, right_size, work_mem, metrics):
    charge_join_type(database, node, right_size, left_size, work_mem, metrics)
    metrics.tuples_out = left_size + right_size
    return metrics
