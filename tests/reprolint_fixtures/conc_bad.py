"""CONC fixture: a lock-owning, thread-spawning class with naked mutations."""

import threading


class LeakyCounter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0
        self._by_worker: dict[str, int] = {}
        self._log: list[str] = []
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while True:
            self.bump("w")

    def bump(self, worker: str) -> None:
        self._count += 1  # CONC401: augmented assign outside the lock
        self._by_worker[worker] = self._count  # CONC401: item write outside the lock
        self._log.append(worker)  # CONC401: container mutator outside the lock

    def reset(self) -> None:
        self._count = 0  # CONC401: plain assign outside the lock
        del self._by_worker["w"]  # CONC401: item delete outside the lock

    def total(self) -> int:
        return self._count  # CONC402: unlocked read of mutated state

    def busiest(self) -> str:
        workers = sorted(self._by_worker)  # CONC402: unlocked read of mutated dict
        return workers[0]
