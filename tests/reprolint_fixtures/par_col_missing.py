"""PAR fixture: the scan operator was renamed away on the columnar side."""

from tests.reprolint_fixtures.par_row import charge_join_type


def columnar_scan_v2(node, data, buffer_pool, metrics):
    access = buffer_pool.access_pages(node.table, data.page_count, sequential=True)
    metrics.pages_hit += access.hits
    access = buffer_pool.access_fraction(node.table, data.page_count, 0.5, sequential=False)
    metrics.random_pages_read += access.misses
    return metrics


def columnar_join(database, node, left_size, right_size, work_mem, metrics):
    charge_join_type(database, node, left_size, right_size, work_mem, metrics)
    return metrics
