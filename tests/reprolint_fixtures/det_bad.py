"""DET fixture: every call below violates a determinism rule."""

import random
import time
from datetime import datetime

import numpy as np


def stamp_result(result: dict) -> dict:
    result["at"] = time.time()  # DET101
    result["at_ns"] = time.time_ns()  # DET101
    result["when"] = datetime.now().isoformat()  # DET102
    return result


def jitter() -> float:
    return random.random()  # DET103


def shuffled(values: list) -> list:
    values = list(values)
    random.shuffle(values)  # DET103
    np.random.shuffle(values)  # DET103
    return values


def make_generators():
    return random.Random(), np.random.default_rng()  # DET104 (twice)
