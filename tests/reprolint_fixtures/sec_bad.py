"""SEC fixture: unallowlisted and unverified unpickling (both must fail)."""

import pickle
from pickle import loads as sneaky_loads


def cache_read(blob: bytes):
    return pickle.loads(blob)  # SEC201: not an allowlisted function


def aliased_read(blob: bytes):
    return sneaky_loads(blob)  # SEC201: aliases do not dodge the rule


def recv_frame_unverified(sock) -> object:
    # Emulates a network decoder that unpickles without any auth gate:
    # SEC202 (and SEC201 unless allowlisted).
    header = sock.recv(6)
    length = int.from_bytes(header[2:6], "big")
    return pickle.loads(sock.recv(length))
