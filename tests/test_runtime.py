"""Tests for the experiment runtime: fingerprints, plan cache, result store, parallel runner."""

import json

import pytest

from repro.config import RuntimeConfig, SIMULATION_CONFIG, PostgresConfig
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.metrics import MethodRunResult, QueryTiming
from repro.core.report import store_report, summary_rows_from_store
from repro.core.splits import DatasetSplit, SplitSampling
from repro.errors import ExperimentError
from repro.optimizer.planner import Planner
from repro.plans.hints import HintSet, OperatorToggles
from repro.plans.physical import JoinType
from repro.runtime.fingerprint import query_fingerprint, stable_seed
from repro.runtime.parallel import ParallelExperimentRunner
from repro.runtime.plan_cache import PlanCache
from repro.runtime.result_store import ResultStore, TaskKey
from repro.sql.binder import bind_sql
from repro.storage.registry import get_process_registry
from repro.storage.spec import DatabaseSpec
from repro.workloads import build_workload

THREE_WAY = (
    "SELECT COUNT(*) FROM title AS t, movie_keyword AS mk, keyword AS k "
    "WHERE t.id = mk.movie_id AND mk.keyword_id = k.id "
    "AND k.keyword = 'sequel' AND t.production_year > 2000"
)

OTHER_THREE_WAY = THREE_WAY.replace("2000", "1990")

TWO_WAY = (
    "SELECT COUNT(*) FROM title AS t, movie_companies AS mc WHERE t.id = mc.movie_id"
)


def run_result_as_json(result: MethodRunResult) -> str:
    """Canonical byte-level rendering used for exact-equality assertions."""
    return json.dumps(result.to_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


class TestFingerprints:
    def test_equal_configs_equal_fingerprints(self):
        a = PostgresConfig(work_mem=8 * 1024 * 1024)
        b = PostgresConfig(work_mem=8 * 1024 * 1024)
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_mutated_knob_changes_fingerprint(self):
        base = SIMULATION_CONFIG
        for knob, value in (
            ("work_mem", base.work_mem * 2),
            ("geqo_threshold", base.geqo_threshold + 1),
            ("enable_hashjoin", not base.enable_hashjoin),
            ("random_page_cost", base.random_page_cost + 0.5),
        ):
            mutated = base.with_overrides(**{knob: value})
            assert mutated.fingerprint() != base.fingerprint(), knob

    def test_hint_fingerprint_ignores_display_name(self):
        a = HintSet(toggles=OperatorToggles(hashjoin=False), name="arm-1")
        b = HintSet(toggles=OperatorToggles(hashjoin=False), name="arm-2")
        assert a.fingerprint() == b.fingerprint()

    def test_hint_fingerprint_sensitive_to_content(self):
        empty = HintSet()
        assert empty.fingerprint() != HintSet(toggles=OperatorToggles(nestloop=False)).fingerprint()
        assert (
            HintSet.from_join_order(["a", "b"]).fingerprint()
            != HintSet.from_join_order(["b", "a"]).fingerprint()
        )
        assert (
            HintSet.from_join_order(["a", "b"]).fingerprint()
            != HintSet.from_leading_prefix(["a", "b"]).fingerprint()
        )

    def test_hint_fingerprint_order_independent_mappings(self):
        jm1 = {frozenset({"a", "b"}): JoinType.HASH, frozenset({"a", "b", "c"}): JoinType.MERGE}
        jm2 = {frozenset({"a", "b", "c"}): JoinType.MERGE, frozenset({"a", "b"}): JoinType.HASH}
        a = HintSet(leading=("a", "b", "c"), join_methods=jm1)
        b = HintSet(leading=("a", "b", "c"), join_methods=jm2)
        assert a.fingerprint() == b.fingerprint()

    def test_query_fingerprint_stable_across_rebinding(self, imdb_db):
        a = bind_sql(THREE_WAY, imdb_db.schema, name="first")
        b = bind_sql(THREE_WAY, imdb_db.schema, name="second")
        assert query_fingerprint(a) == query_fingerprint(b)

    def test_query_fingerprint_sensitive_to_literals(self, imdb_db):
        a = bind_sql(THREE_WAY, imdb_db.schema)
        b = bind_sql(OTHER_THREE_WAY, imdb_db.schema)
        assert query_fingerprint(a) != query_fingerprint(b)

    def test_stable_seed_deterministic_and_bounded(self):
        assert stable_seed(0, "bao", "random-0", 1) == stable_seed(0, "bao", "random-0", 1)
        assert stable_seed(0, "bao", "random-0", 1) != stable_seed(0, "bao", "random-0", 2)
        assert 0 <= stable_seed("anything") < 2**31


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------


class TestPlanCache:
    def test_hit_and_miss_accounting(self, imdb_db):
        cache = PlanCache()
        planner = Planner(imdb_db, plan_cache=cache)
        query = bind_sql(THREE_WAY, imdb_db.schema)
        first = planner.plan_with_info(query)
        assert cache.stats.misses == 1 and cache.stats.hits == 0 and len(cache) == 1
        second = planner.plan_with_info(query)
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert first is second

    def test_cache_shared_across_planners(self, imdb_db):
        cache = PlanCache()
        query = bind_sql(THREE_WAY, imdb_db.schema)
        Planner(imdb_db, plan_cache=cache).plan_with_info(query)
        # A second planner with an identical configuration hits immediately —
        # and so does a rebinding of the same SQL text (content keying).
        rebound = bind_sql(THREE_WAY, imdb_db.schema)
        Planner(imdb_db, plan_cache=cache).plan_with_info(rebound)
        assert cache.stats.hits == 1

    def test_config_knob_change_invalidates(self, imdb_db):
        cache = PlanCache()
        query = bind_sql(THREE_WAY, imdb_db.schema)
        Planner(imdb_db, SIMULATION_CONFIG, plan_cache=cache).plan_with_info(query)
        changed = SIMULATION_CONFIG.with_overrides(work_mem=SIMULATION_CONFIG.work_mem * 4)
        Planner(imdb_db, changed, plan_cache=cache).plan_with_info(query)
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        assert len(cache) == 2

    def test_hint_change_invalidates_but_renaming_does_not(self, imdb_db):
        cache = PlanCache()
        planner = Planner(imdb_db, plan_cache=cache)
        query = bind_sql(THREE_WAY, imdb_db.schema)
        planner.plan_with_info(query, HintSet(toggles=OperatorToggles(hashjoin=False), name="a"))
        planner.plan_with_info(query, HintSet(toggles=OperatorToggles(hashjoin=False), name="b"))
        assert cache.stats.hits == 1  # same content, different display name
        planner.plan_with_info(query, HintSet(toggles=OperatorToggles(nestloop=False)))
        assert cache.stats.misses == 2

    def test_lru_eviction(self, imdb_db):
        cache = PlanCache(max_entries=2)
        planner = Planner(imdb_db, plan_cache=cache)
        q1 = bind_sql(THREE_WAY, imdb_db.schema)
        q2 = bind_sql(OTHER_THREE_WAY, imdb_db.schema)
        q3 = bind_sql(TWO_WAY, imdb_db.schema)
        planner.plan_with_info(q1)
        planner.plan_with_info(q2)
        planner.plan_with_info(q3)  # evicts q1 (least recently used)
        assert len(cache) == 2 and cache.stats.evictions == 1
        planner.plan_with_info(q1)
        assert cache.stats.misses == 4

    def test_zero_capacity_disables_caching(self, imdb_db):
        cache = PlanCache(max_entries=0)
        planner = Planner(imdb_db, plan_cache=cache)
        query = bind_sql(THREE_WAY, imdb_db.schema)
        planner.plan_with_info(query)
        planner.plan_with_info(query)
        assert len(cache) == 0 and cache.stats.hits == 0 and cache.stats.misses == 2

    def test_cache_scoped_by_database_identity(self, imdb_db):
        """Two planners over different databases must not share entries."""
        cache = PlanCache()
        half = imdb_db.sample_copy({"movie_keyword": 0.5}, seed=3)
        query = bind_sql(THREE_WAY, imdb_db.schema)
        Planner(imdb_db, plan_cache=cache).plan_with_info(query)
        Planner(half, plan_cache=cache).plan_with_info(query)
        assert cache.stats.misses == 2 and cache.stats.hits == 0

    def test_cache_scoped_by_geqo_parameters(self, imdb_db):
        from repro.optimizer.geqo import GeqoParameters

        cache = PlanCache()
        query = bind_sql(THREE_WAY, imdb_db.schema)
        Planner(imdb_db, plan_cache=cache).plan_with_info(query)
        Planner(
            imdb_db, plan_cache=cache, geqo_parameters=GeqoParameters(seed=99)
        ).plan_with_info(query)
        assert cache.stats.misses == 2 and cache.stats.hits == 0

    def test_runtime_zero_cache_entries_disables_caching(self, imdb_db, job_workload, grid_splits):
        runner = make_runner(imdb_db, job_workload, workers=1, plan_cache_entries=0)
        task = runner.tasks_for(("postgres",), grid_splits[:1])[0]
        env = runner._task_runner(task).build_environment()
        assert env.planner.plan_cache.max_entries == 0

    def test_cached_plan_identical_to_fresh_plan(self, imdb_db):
        query = bind_sql(THREE_WAY, imdb_db.schema)
        cached_planner = Planner(imdb_db, plan_cache=PlanCache())
        warm = cached_planner.plan_with_info(query)
        again = cached_planner.plan_with_info(query)
        fresh = Planner(imdb_db, plan_cache=PlanCache(max_entries=0)).plan_with_info(query)
        assert again.estimated_cost == fresh.estimated_cost
        assert again.strategy == fresh.strategy
        assert warm.plan.label() == fresh.plan.label()


# ---------------------------------------------------------------------------
# Result store
# ---------------------------------------------------------------------------


def _sample_result() -> MethodRunResult:
    return MethodRunResult(
        method="postgres",
        split_name="random-0",
        workload_name="job",
        training_time_s=1.25,
        executed_training_plans=7,
        timings=[
            QueryTiming(
                query_id="1a",
                method="postgres",
                inference_time_ms=0.0,
                planning_time_ms=1.5,
                execution_time_ms=20.25,
                timed_out=False,
                num_joins=3,
                metadata={"strategy": "dynamic-programming"},
            ),
            QueryTiming(
                query_id="1b",
                method="postgres",
                inference_time_ms=0.5,
                planning_time_ms=2.0,
                execution_time_ms=60000.0,
                timed_out=True,
                num_joins=4,
            ),
        ],
    )


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = TaskKey("job", "random-0", "postgres", seed=3)
        store.save(key, _sample_result(), context_fingerprint="ctx")
        loaded = store.load(key, context_fingerprint="ctx")
        assert loaded.to_dict() == _sample_result().to_dict()
        assert loaded.timings[1].timed_out is True

    def test_skip_existing_resume(self, tmp_path):
        store = ResultStore(tmp_path)
        key = TaskKey("job", "random-0", "postgres")
        calls = []

        def thunk():
            calls.append(1)
            return _sample_result()

        first, resumed_first = store.load_or_run(key, thunk, "ctx")
        second, resumed_second = store.load_or_run(key, thunk, "ctx")
        assert (resumed_first, resumed_second) == (False, True)
        assert len(calls) == 1
        assert run_result_as_json(first) == run_result_as_json(second)

    def test_skip_existing_disabled_recomputes(self, tmp_path):
        store = ResultStore(tmp_path, skip_existing=False)
        key = TaskKey("job", "random-0", "postgres")
        calls = []

        def thunk():
            calls.append(1)
            return _sample_result()

        store.load_or_run(key, thunk)
        store.load_or_run(key, thunk)
        assert len(calls) == 2

    def test_context_fingerprint_mismatch_treated_as_missing(self, tmp_path):
        store = ResultStore(tmp_path)
        key = TaskKey("job", "random-0", "postgres")
        store.save(key, _sample_result(), context_fingerprint="old-config")
        assert not store.exists(key, "new-config")
        with pytest.raises(ExperimentError):
            store.load(key, "new-config")
        # Without a fingerprint requirement the file is still usable.
        assert store.exists(key)

    def test_corrupt_file_treated_as_missing(self, tmp_path):
        store = ResultStore(tmp_path)
        key = TaskKey("job", "random-0", "postgres")
        path = store.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert not store.exists(key, "ctx")
        with pytest.raises(ExperimentError):
            store.load(key)

    def test_pending_filters_completed_tasks(self, tmp_path):
        store = ResultStore(tmp_path)
        done = TaskKey("job", "random-0", "postgres")
        todo = TaskKey("job", "random-0", "bao")
        store.save(done, _sample_result(), "ctx")
        assert store.pending([done, todo], "ctx") == [todo]

    def test_clear_removes_everything(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(TaskKey("job", "s", "m"), _sample_result())
        assert store.clear() == 1
        assert list(store.completed_files()) == []

    def test_stale_tmp_file_does_not_poison_resume(self, tmp_path):
        """Regression: a ``.tmp`` leftover of a crashed atomic write looked
        like a stored result to the fingerprint-less ``exists()``/``load()``
        path, so resume either skipped the task or died on 'corrupt stored
        result'.  The task must be re-run and the fresh save must win."""
        store = ResultStore(tmp_path)
        key = TaskKey("job", "random-0", "postgres")
        directory = store.path_for(key).parent
        directory.mkdir(parents=True)
        # Same shape _atomic_write's mkstemp produces: <stem>.<random>.tmp.
        stale = directory / "postgres-seed0.x7f3q9.tmp"
        stale.write_text('{"format_version": 1, "result": {truncated')
        assert not store.exists(key)
        with pytest.raises(ExperimentError):
            store.load(key)
        calls = []

        def thunk():
            calls.append(1)
            return _sample_result()

        result, resumed = store.load_or_run(key, thunk)
        assert calls == [1] and resumed is False
        assert run_result_as_json(store.load(key)) == run_result_as_json(result)

    def test_tmp_leftover_next_to_real_result_is_ignored(self, tmp_path):
        store = ResultStore(tmp_path)
        key = TaskKey("job", "random-0", "postgres")
        store.save(key, _sample_result(), context_fingerprint="ctx")
        (store.path_for(key, "ctx").parent / "postgres-seed0.zzzz.tmp").write_text("{broken")
        assert store.exists(key)
        assert store.load(key).to_dict() == _sample_result().to_dict()
        # seed1 must still not match seed10 after the pattern change.
        other = TaskKey("job", "random-0", "postgres", seed=1)
        store.save(TaskKey("job", "random-0", "postgres", seed=10), _sample_result())
        assert not store.exists(other)

    def test_clear_and_describe_exclude_artifacts(self, tmp_path):
        """Regression: ``clear()`` deleted saved artifacts and ``describe()``
        counted them as stored results."""
        store = ResultStore(tmp_path)
        store.save(TaskKey("job", "s", "m"), _sample_result())
        store.save_artifact("figure4 rows", [{"method": "postgres"}])
        assert "1 stored results" in store.describe()
        assert store.clear() == 1
        assert list(store.completed_files()) == []
        # The artifact survived the clear and is still loadable.
        assert store.load_artifact("figure4 rows") == [{"method": "postgres"}]

    def test_artifact_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        rows = [{"method": "postgres", "end_to_end_ms": 12.5}]
        store.save_artifact("figure4 rows", rows)
        assert store.load_artifact("figure4 rows") == rows
        with pytest.raises(ExperimentError):
            store.load_artifact("missing")

    def test_report_rows_from_store(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(TaskKey("job", "random-0", "postgres"), _sample_result())
        store.save_artifact("not-a-run", {"rows": []})
        rows = summary_rows_from_store(store)
        assert len(rows) == 1 and rows[0]["method"] == "postgres"
        assert "postgres" in store_report(store, title="stored")

    def test_keys_sanitized_for_filesystem(self, tmp_path):
        store = ResultStore(tmp_path)
        key = TaskKey("job/ext", "leave one out-0", "my method", seed=1)
        path = store.save(key, _sample_result())
        assert path.is_file()
        assert store.exists(key)


# ---------------------------------------------------------------------------
# Parallel runner
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def grid_splits(job_workload):
    return [
        DatasetSplit(
            workload_name=job_workload.name,
            sampling=SplitSampling.RANDOM,
            split_index=0,
            train_ids=("1a", "2a", "3a"),
            test_ids=("1b", "2b"),
        ),
        DatasetSplit(
            workload_name=job_workload.name,
            sampling=SplitSampling.RANDOM,
            split_index=1,
            train_ids=("6a", "6b", "17a"),
            test_ids=("3a", "1a"),
        ),
    ]


GRID_METHODS = ("postgres", "bao")

GRID_CONFIG = ExperimentConfig(
    optimizer_kwargs={"bao": {"training_passes": 1}},
    deterministic_timing=True,
)


def make_runner(imdb_db, job_workload, workers: int, **kwargs) -> ParallelExperimentRunner:
    return ParallelExperimentRunner(
        imdb_db,
        job_workload,
        experiment_config=GRID_CONFIG,
        runtime_config=RuntimeConfig(workers=workers, **kwargs),
    )


class TestParallelRunner:
    def test_parallel_identical_to_serial_runner(self, imdb_db, job_workload, grid_splits):
        """workers=4 must be byte-identical to serial task-by-task execution."""
        parallel = make_runner(imdb_db, job_workload, workers=4)
        parallel_results = parallel.run_grid(GRID_METHODS, grid_splits)

        serial_results = []
        for task in parallel.tasks_for(GRID_METHODS, grid_splits):
            serial_runner = ExperimentRunner(
                imdb_db.with_config(imdb_db.config),
                job_workload,
                experiment_config=GRID_CONFIG.with_seed(task.task_seed),
            )
            serial_results.append(serial_runner.run_method(task.method, task.split))

        assert len(parallel_results) == len(serial_results) == 4
        for got, expected in zip(parallel_results, serial_results):
            assert run_result_as_json(got) == run_result_as_json(expected)

    def test_workers_one_equals_workers_four(self, imdb_db, job_workload, grid_splits):
        serial = make_runner(imdb_db, job_workload, workers=1)
        parallel = make_runner(imdb_db, job_workload, workers=4)
        a = [run_result_as_json(r) for r in serial.run_grid(GRID_METHODS, grid_splits)]
        b = [run_result_as_json(r) for r in parallel.run_grid(GRID_METHODS, grid_splits)]
        assert a == b

    def test_process_pool_identical_to_serial(self, imdb_db, job_workload, grid_splits):
        """Cross-process execution pickles the task context yet stays identical."""
        process = make_runner(imdb_db, job_workload, workers=2, executor_kind="process")
        serial = make_runner(imdb_db, job_workload, workers=1)
        a = [run_result_as_json(r) for r in process.run_grid(("postgres",), grid_splits)]
        b = [run_result_as_json(r) for r in serial.run_grid(("postgres",), grid_splits)]
        assert a == b

    def test_results_in_grid_order(self, imdb_db, job_workload, grid_splits):
        runner = make_runner(imdb_db, job_workload, workers=4)
        results = runner.run_grid(GRID_METHODS, grid_splits)
        expected_order = [
            (split.name, method) for split in grid_splits for method in GRID_METHODS
        ]
        assert [(r.split_name, r.method) for r in results] == expected_order

    def test_task_seed_independent_of_grid_composition(self, imdb_db, job_workload, grid_splits):
        runner = make_runner(imdb_db, job_workload, workers=2)
        full = {
            (t.method, t.split.name): t.task_seed
            for t in runner.tasks_for(GRID_METHODS, grid_splits)
        }
        reduced = {
            (t.method, t.split.name): t.task_seed
            for t in runner.tasks_for(("postgres",), grid_splits[:1])
        }
        for key, seed in reduced.items():
            assert full[key] == seed

    def test_repeats_get_distinct_seeds(self, imdb_db, job_workload, grid_splits):
        runner = make_runner(imdb_db, job_workload, workers=2)
        tasks = runner.tasks_for(("postgres",), grid_splits[:1], repeats=2)
        assert len(tasks) == 2
        assert tasks[0].task_seed != tasks[1].task_seed

    def test_invalid_grid_rejected(self, imdb_db, job_workload, grid_splits):
        runner = make_runner(imdb_db, job_workload, workers=2)
        with pytest.raises(ExperimentError):
            runner.tasks_for(GRID_METHODS, grid_splits, repeats=0)

    def test_resume_from_store(self, imdb_db, job_workload, grid_splits, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "grid-store")
        first = ParallelExperimentRunner(
            imdb_db,
            job_workload,
            experiment_config=GRID_CONFIG,
            runtime_config=RuntimeConfig(workers=4),
            result_store=store,
        )
        original = [run_result_as_json(r) for r in first.run_grid(GRID_METHODS, grid_splits)]
        assert store.stored_count == 4

        second = ParallelExperimentRunner(
            imdb_db,
            job_workload,
            experiment_config=GRID_CONFIG,
            runtime_config=RuntimeConfig(workers=4),
            result_store=store,
        )
        # Recompute goes through ExperimentRunner._run_method_uncached (the
        # store's load_or_run thunk); run_task is never on the store path, so
        # patch the method every recompute must traverse.
        monkeypatch.setattr(
            ExperimentRunner,
            "_run_method_uncached",
            lambda *args, **kwargs: pytest.fail("resume should skip recomputation"),
        )
        resumed = [run_result_as_json(r) for r in second.run_grid(GRID_METHODS, grid_splits)]
        assert resumed == original

    def test_partial_resume_runs_only_missing_tasks(
        self, imdb_db, job_workload, grid_splits, tmp_path
    ):
        store = ResultStore(tmp_path / "partial-store")
        runner = ParallelExperimentRunner(
            imdb_db,
            job_workload,
            experiment_config=GRID_CONFIG,
            runtime_config=RuntimeConfig(workers=1),
            result_store=store,
        )
        tasks = runner.tasks_for(GRID_METHODS, grid_splits)
        # Pre-complete exactly one task, as if an earlier sweep was killed.
        done = tasks[0]
        store.save(
            runner.task_key(done), runner.run_task(done), runner.task_fingerprint(done)
        )
        pairs = [(runner.task_key(t), runner.task_fingerprint(t)) for t in tasks]
        assert sum(1 for k, fp in pairs if not store.exists(k, fp)) == len(tasks) - 1
        runner.run_grid(GRID_METHODS, grid_splits)
        assert all(store.exists(k, fp) for k, fp in pairs)

    def test_store_dir_via_runtime_config(self, imdb_db, job_workload, grid_splits, tmp_path):
        runner = ParallelExperimentRunner(
            imdb_db,
            job_workload,
            experiment_config=GRID_CONFIG,
            runtime_config=RuntimeConfig(workers=1, store_dir=str(tmp_path / "auto-store")),
        )
        assert runner.result_store is not None
        runner.run_grid(("postgres",), grid_splits[:1])
        assert runner.result_store.stored_count == 1


def _spec_grid_parts(scale: float):
    """A spec-built database, rebound workload and tiny split at ``scale``."""
    spec = DatabaseSpec.create("imdb", scale=scale, seed=7, config=SIMULATION_CONFIG)
    database = get_process_registry().get(spec)
    workload = build_workload("job", database.schema)
    split = DatasetSplit(
        workload_name=workload.name,
        sampling=SplitSampling.RANDOM,
        split_index=0,
        train_ids=("1a", "2a", "3a"),
        test_ids=("1b", "2b"),
    )
    return spec, workload, split


class TestSpecDispatchEquivalence:
    """Process-pool spec dispatch must stay byte-identical to serial at any scale."""

    @pytest.mark.parametrize("scale", [0.2, 0.4])
    def test_process_pool_spec_dispatch_identical_to_serial(self, scale):
        spec, workload, split = _spec_grid_parts(scale)
        process = ParallelExperimentRunner(
            spec,
            workload,
            experiment_config=GRID_CONFIG,
            runtime_config=RuntimeConfig(workers=2, executor_kind="process"),
        )
        assert process.uses_spec_dispatch
        serial = ParallelExperimentRunner(
            spec,
            workload,
            experiment_config=GRID_CONFIG,
            runtime_config=RuntimeConfig(workers=1),
        )
        a = [run_result_as_json(r) for r in process.run_grid(GRID_METHODS, [split])]
        b = [run_result_as_json(r) for r in serial.run_grid(GRID_METHODS, [split])]
        assert a == b

    def test_process_pool_spec_dispatch_resumes_from_store(self, tmp_path, monkeypatch):
        """Workers persist results; a later sweep over the same store skips them."""
        spec, workload, split = _spec_grid_parts(0.2)
        store = ResultStore(tmp_path / "spec-store")
        first = ParallelExperimentRunner(
            spec,
            workload,
            experiment_config=GRID_CONFIG,
            runtime_config=RuntimeConfig(workers=2, executor_kind="process"),
            result_store=store,
        )
        original = [run_result_as_json(r) for r in first.run_grid(GRID_METHODS, [split])]
        # The workers (not the parent store instance) wrote the files.
        assert len(list(store.completed_files())) == len(GRID_METHODS)

        second = ParallelExperimentRunner(
            spec,
            workload,
            experiment_config=GRID_CONFIG,
            runtime_config=RuntimeConfig(workers=1),
            result_store=ResultStore(tmp_path / "spec-store"),
        )
        monkeypatch.setattr(
            ExperimentRunner,
            "_run_method_uncached",
            lambda *args, **kwargs: pytest.fail("resume should skip execution"),
        )
        resumed = [run_result_as_json(r) for r in second.run_grid(GRID_METHODS, [split])]
        assert resumed == original

    def test_same_store_different_scale_not_resumed(self, tmp_path):
        """The database name is scale-blind ('imdb' at 0.2 and 0.4); the spec
        fingerprint in the context keeps small-scale results from being served
        as large-scale ones out of a shared persistent store."""
        store = ResultStore(tmp_path / "scale-store")
        for scale in (0.2, 0.4):
            spec, workload, split = _spec_grid_parts(scale)
            runner = ExperimentRunner(
                spec, workload, experiment_config=GRID_CONFIG, result_store=store
            )
            runner.run_method("postgres", split)
        assert store.loaded_count == 0 and store.stored_count == 2


class TestSerialRunnerResume:
    def test_run_method_resumes_from_store(self, imdb_db, job_workload, grid_splits, tmp_path):
        store = ResultStore(tmp_path / "serial-store")
        runner = ExperimentRunner(
            imdb_db,
            job_workload,
            experiment_config=GRID_CONFIG,
            result_store=store,
        )
        first = runner.run_method("postgres", grid_splits[0])
        assert store.stored_count == 1 and store.loaded_count == 0
        second = runner.run_method("postgres", grid_splits[0])
        assert store.loaded_count == 1
        assert run_result_as_json(first) == run_result_as_json(second)

    def test_same_split_name_different_membership_not_resumed(
        self, imdb_db, job_workload, grid_splits, tmp_path
    ):
        """'random-0' regenerated under another seed holds different queries —
        stored results for the old membership must not be reused."""
        store = ResultStore(tmp_path / "membership-store")
        runner = ExperimentRunner(
            imdb_db, job_workload, experiment_config=GRID_CONFIG, result_store=store
        )
        runner.run_method("postgres", grid_splits[0])
        other = DatasetSplit(
            workload_name=job_workload.name,
            sampling=SplitSampling.RANDOM,
            split_index=0,
            train_ids=("6a", "6b"),
            test_ids=("2a",),
        )
        assert other.name == grid_splits[0].name
        runner.run_method("postgres", other)
        assert store.loaded_count == 0 and store.stored_count == 2

    def test_changed_config_is_not_resumed(self, imdb_db, job_workload, grid_splits, tmp_path):
        store = ResultStore(tmp_path / "serial-store")
        base = ExperimentRunner(
            imdb_db, job_workload, experiment_config=GRID_CONFIG, result_store=store
        )
        base.run_method("postgres", grid_splits[0])
        changed = ExperimentRunner(
            imdb_db,
            job_workload,
            config=imdb_db.config.with_overrides(work_mem=imdb_db.config.work_mem * 2),
            experiment_config=GRID_CONFIG,
            result_store=store,
        )
        changed.run_method("postgres", grid_splits[0])
        # The second run could not reuse the first run's file: different knobs.
        assert store.loaded_count == 0 and store.stored_count == 2


class TestRuntimeConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(workers=0)
        with pytest.raises(ValueError):
            RuntimeConfig(executor_kind="fibers")
        with pytest.raises(ValueError):
            RuntimeConfig(plan_cache_entries=-1)

    def test_overrides(self):
        config = RuntimeConfig().with_overrides(workers=8, executor_kind="serial")
        assert config.workers == 8 and config.executor_kind == "serial"


class TestDeterministicTiming:
    def test_two_runs_identical_including_training_times(self, imdb_db, job_workload, grid_splits):
        def one_run() -> MethodRunResult:
            runner = ExperimentRunner(
                imdb_db.with_config(imdb_db.config),
                job_workload,
                experiment_config=GRID_CONFIG.with_seed(11),
            )
            return runner.run_method("bao", grid_splits[0])

        assert run_result_as_json(one_run()) == run_result_as_json(one_run())

    def test_wall_clock_mode_still_default(self):
        assert ExperimentConfig().deterministic_timing is False
