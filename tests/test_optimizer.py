"""Tests for cardinality estimation, the cost model, enumeration, GEQO and the planner."""

from random import Random

import pytest

from repro.config import SIMULATION_CONFIG
from repro.errors import OptimizerError
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost_model import CostModel
from repro.optimizer.enumeration import (
    DPEnumerator,
    count_join_tree_shapes,
    count_left_deep_orders,
    enumerate_join_trees,
    greedy_plan,
    left_deep_plan_from_order,
)
from repro.optimizer.geqo import GeqoEnumerator, GeqoParameters
from repro.optimizer.planner import (
    STRATEGY_DP,
    STRATEGY_FORCED,
    STRATEGY_GEQO,
    STRATEGY_GREEDY,
    Planner,
)
from repro.plans.hints import HintSet, OperatorToggles
from repro.plans.physical import (
    JoinType,
    ScanType,
    plan_join_nodes,
    plan_scan_nodes,
    strip_decorations,
)
from repro.plans.properties import is_left_deep, join_order_of
from repro.sql.binder import bind_sql

THREE_WAY = (
    "SELECT COUNT(*) FROM title AS t, movie_keyword AS mk, keyword AS k "
    "WHERE t.id = mk.movie_id AND mk.keyword_id = k.id "
    "AND k.keyword = 'sequel' AND t.production_year > 2000"
)

FIVE_WAY = (
    "SELECT COUNT(*) FROM title AS t, movie_keyword AS mk, keyword AS k, "
    "movie_companies AS mc, company_name AS cn "
    "WHERE t.id = mk.movie_id AND mk.keyword_id = k.id AND mc.movie_id = t.id "
    "AND mc.company_id = cn.id AND cn.country_code = '[us]'"
)


@pytest.fixture(scope="module")
def queries(imdb_db):
    return {
        "three": bind_sql(THREE_WAY, imdb_db.schema, name="three"),
        "five": bind_sql(FIVE_WAY, imdb_db.schema, name="five"),
    }


class TestCardinality:
    def test_base_rows_between_one_and_table_rows(self, imdb_db, queries):
        estimator = CardinalityEstimator(imdb_db)
        q = queries["three"]
        rows = estimator.base_rows(q, "t")
        assert 1.0 <= rows <= estimator.table_rows(q, "t")

    def test_equality_filter_more_selective_than_range(self, imdb_db, queries):
        estimator = CardinalityEstimator(imdb_db)
        q = queries["three"]
        eq_sel = estimator.filter_selectivity(q, q.filters_for("k")[0])
        range_sel = estimator.filter_selectivity(q, q.filters_for("t")[0])
        assert 0.0 <= eq_sel <= 1.0 and 0.0 <= range_sel <= 1.0
        assert eq_sel < range_sel

    def test_range_estimate_close_to_truth(self, imdb_db, queries):
        estimator = CardinalityEstimator(imdb_db)
        q = queries["three"]
        error = estimator.estimation_error(q, "t")
        assert error < 3.0  # single-column range on histogrammed data is decent

    def test_join_selectivity_in_unit_interval(self, imdb_db, queries):
        estimator = CardinalityEstimator(imdb_db)
        q = queries["three"]
        for predicate in q.joins:
            assert 0.0 < estimator.join_selectivity(q, predicate) <= 1.0

    def test_rows_for_monotone_in_subset(self, imdb_db, queries):
        estimator = CardinalityEstimator(imdb_db)
        q = queries["five"]
        pair = estimator.rows_for(q, {"t", "mk"})
        assert pair >= 1.0
        assert estimator.rows_for(q, {"t"}) == pytest.approx(estimator.base_rows(q, "t"))

    def test_subset_cache_returns_same_value(self, imdb_db, queries):
        estimator = CardinalityEstimator(imdb_db)
        q = queries["five"]
        a = estimator.rows_for(q, {"t", "mk", "k"})
        b = estimator.rows_for(q, {"k", "mk", "t"})
        assert a == b


class TestCostModel:
    def test_best_scan_prefers_index_for_selective_filter(self, imdb_db, queries):
        model = CostModel(imdb_db)
        q = queries["three"]
        scan = model.best_scan(q, "t")
        assert scan.scan_type in (ScanType.INDEX, ScanType.BITMAP, ScanType.SEQ)
        candidates = model.candidate_scans(q, "t")
        assert any(c.scan_type is not ScanType.SEQ for c in candidates)

    def test_seqscan_chosen_without_filters(self, imdb_db, queries):
        model = CostModel(imdb_db)
        q = queries["five"]
        scan = model.best_scan(q, "mk")
        assert scan.scan_type is ScanType.SEQ

    def test_disabling_scan_types_respected(self, imdb_db, queries):
        model = CostModel(imdb_db)
        q = queries["three"]
        hints = HintSet(toggles=OperatorToggles(indexscan=False, bitmapscan=False))
        candidates = model.candidate_scans(q, "t", hints)
        assert all(c.scan_type in (ScanType.SEQ, ScanType.TID) for c in candidates)

    def test_forced_scan_method(self, imdb_db, queries):
        model = CostModel(imdb_db)
        q = queries["three"]
        hints = HintSet(scan_methods={"t": ScanType.BITMAP})
        scan = model.best_scan(q, "t", hints)
        assert scan.scan_type is ScanType.BITMAP

    def test_join_cost_positive_and_cumulative(self, imdb_db, queries):
        model = CostModel(imdb_db)
        q = queries["three"]
        left = model.best_scan(q, "t")
        right = model.best_scan(q, "mk")
        join = model.best_join(q, left, right)
        assert join.estimated_cost >= max(left.estimated_cost, right.estimated_cost)
        assert join.estimated_rows >= 1.0

    def test_forced_join_method(self, imdb_db, queries):
        model = CostModel(imdb_db)
        q = queries["three"]
        left = model.best_scan(q, "t")
        right = model.best_scan(q, "mk")
        hints = HintSet(join_methods={frozenset({"t", "mk"}): JoinType.MERGE})
        join = model.best_join(q, left, right, hints)
        assert join.join_type is JoinType.MERGE

    def test_hash_join_usually_beats_materialized_nestloop(self, imdb_db, queries):
        model = CostModel(imdb_db)
        q = queries["five"]
        left = model.best_scan(q, "mk")
        right = model.best_scan(q, "mc")
        hash_cost = model.join_cost(q, JoinType.HASH, left, right, q.joins_between({"mk"}, {"mc"}))
        nl_cost = model.join_cost(q, JoinType.NESTED_LOOP, left, right, [])
        assert hash_cost < nl_cost

    def test_recost_plan_preserves_structure(self, imdb_db, queries):
        model = CostModel(imdb_db)
        q = queries["three"]
        plan = left_deep_plan_from_order(q, model, ["k", "mk", "t"])
        recosted = model.recost_plan(q, plan)
        assert join_order_of(recosted) == join_order_of(plan)
        assert recosted.estimated_cost > 0


class TestEnumeration:
    def test_left_deep_plan_covers_all_aliases(self, imdb_db, queries):
        model = CostModel(imdb_db)
        q = queries["five"]
        plan = left_deep_plan_from_order(q, model, list(q.aliases))
        assert plan.aliases == frozenset(q.aliases)
        assert is_left_deep(plan)

    def test_left_deep_plan_rejects_unknown_alias(self, imdb_db, queries):
        model = CostModel(imdb_db)
        with pytest.raises(OptimizerError):
            left_deep_plan_from_order(queries["three"], model, ["t", "zz"])

    def test_dp_beats_or_matches_worst_order(self, imdb_db, queries):
        model = CostModel(imdb_db)
        q = queries["five"]
        dp_plan = DPEnumerator(model).plan(q)
        worst = max(
            left_deep_plan_from_order(q, model, order).estimated_cost
            for order in (list(q.aliases), list(reversed(q.aliases)))
        )
        assert dp_plan.estimated_cost <= worst
        assert dp_plan.aliases == frozenset(q.aliases)

    def test_dp_left_deep_only_mode(self, imdb_db, queries):
        model = CostModel(imdb_db)
        q = queries["five"]
        plan = DPEnumerator(model, consider_bushy=False).plan(q)
        assert is_left_deep(plan)

    def test_greedy_plan_covers_all_aliases(self, imdb_db, queries):
        model = CostModel(imdb_db)
        q = queries["five"]
        plan = greedy_plan(q, model)
        assert plan.aliases == frozenset(q.aliases)

    def test_enumerate_join_trees_shapes_and_coverage(self, imdb_db, queries):
        model = CostModel(imdb_db)
        q = queries["three"]
        plans = list(enumerate_join_trees(q, model))
        assert len(plans) >= 4
        assert all(p.aliases == frozenset(q.aliases) for p in plans)

    def test_enumerate_join_trees_refuses_large_queries(self, imdb_db, queries):
        model = CostModel(imdb_db)
        with pytest.raises(OptimizerError):
            list(enumerate_join_trees(queries["five"], model, max_relations=3))

    def test_shape_counting_formulas(self):
        assert count_left_deep_orders(3) == 6
        assert count_join_tree_shapes(2) == 2
        assert count_join_tree_shapes(3) == 12
        assert count_join_tree_shapes(4) > count_left_deep_orders(4)


class TestGeqo:
    def test_geqo_produces_valid_plan(self, imdb_db, queries):
        model = CostModel(imdb_db)
        geqo = GeqoEnumerator(model, GeqoParameters(population_size=12, generations=5))
        plan = geqo.plan(queries["five"])
        assert plan.aliases == frozenset(queries["five"].aliases)

    def test_geqo_deterministic_for_seed(self, imdb_db, queries):
        model = CostModel(imdb_db)
        params = GeqoParameters(population_size=10, generations=4, seed=3)
        a = GeqoEnumerator(model, params).plan(queries["five"])
        b = GeqoEnumerator(model, params).plan(queries["five"])
        assert join_order_of(a) == join_order_of(b)

    def test_geqo_not_much_worse_than_dp(self, imdb_db, queries):
        model = CostModel(imdb_db)
        q = queries["five"]
        dp_cost = DPEnumerator(model).plan(q).estimated_cost
        geqo_cost = GeqoEnumerator(model).plan(q).estimated_cost
        assert geqo_cost <= dp_cost * 5.0


def random_join_query(schema, rng: Random, n_relations: int) -> str:
    """A random connected join query grown along the schema's FK edges.

    Starts from a random foreign key and repeatedly attaches a new table via a
    random edge touching the current table set, yielding a connected join
    graph of ``n_relations`` distinct tables.
    """
    edges = [
        (fk.child_table, fk.child_column, fk.parent_table, fk.parent_column)
        for fk in schema.foreign_keys
        if fk.child_table != fk.parent_table
    ]
    start = edges[rng.randrange(len(edges))]
    tables = {start[0], start[2]}
    conditions = [f"{start[0]}.{start[1]} = {start[2]}.{start[3]}"]
    while len(tables) < n_relations:
        candidates = [
            e
            for e in edges
            if (e[0] in tables) != (e[2] in tables)  # exactly one endpoint inside
        ]
        if not candidates:
            break
        child, child_col, parent, parent_col = candidates[rng.randrange(len(candidates))]
        tables.add(child if parent in tables else parent)
        conditions.append(f"{child}.{child_col} = {parent}.{parent_col}")
    from_clause = ", ".join(f"{t} AS {t}" for t in sorted(tables))
    return f"SELECT COUNT(*) FROM {from_clause} WHERE {' AND '.join(conditions)}"


class TestPlannerProperties:
    """Property-style invariants on randomized join graphs (seeded for determinism)."""

    N_RANDOM_GRAPHS = 12

    def test_dp_cost_never_worse_than_greedy(self, imdb_db):
        """DP is exhaustive over a superset of greedy's search space."""
        rng = Random(0)
        model = CostModel(imdb_db)
        for trial in range(self.N_RANDOM_GRAPHS):
            sql = random_join_query(imdb_db.schema, rng, rng.randint(3, 6))
            query = bind_sql(sql, imdb_db.schema, name=f"prop-{trial}")
            dp_cost = DPEnumerator(model).plan(query).estimated_cost
            greedy_cost = greedy_plan(query, model).estimated_cost
            assert dp_cost <= greedy_cost * (1 + 1e-9), sql

    def test_dp_cost_never_worse_than_random_left_deep_orders(self, imdb_db):
        rng = Random(0)
        model = CostModel(imdb_db)
        for trial in range(self.N_RANDOM_GRAPHS // 2):
            sql = random_join_query(imdb_db.schema, rng, rng.randint(3, 5))
            query = bind_sql(sql, imdb_db.schema, name=f"prop-ld-{trial}")
            dp_cost = DPEnumerator(model).plan(query).estimated_cost
            for _ in range(4):
                order = list(query.aliases)
                rng.shuffle(order)
                shuffled = left_deep_plan_from_order(query, model, order)
                assert dp_cost <= shuffled.estimated_cost * (1 + 1e-9), (sql, order)

    def test_geqo_respects_threshold(self, imdb_db):
        """The planner switches to GEQO exactly at ``geqo_threshold`` relations."""
        rng = Random(0)
        for trial in range(self.N_RANDOM_GRAPHS):
            n = rng.randint(3, 6)
            sql = random_join_query(imdb_db.schema, rng, n)
            query = bind_sql(sql, imdb_db.schema, name=f"prop-geqo-{trial}")
            threshold = rng.randint(2, 8)
            config = SIMULATION_CONFIG.with_overrides(geqo=True, geqo_threshold=threshold)
            strategy = Planner(imdb_db, config).plan_with_info(query).strategy
            if query.num_relations >= threshold:
                assert strategy == STRATEGY_GEQO, (sql, threshold)
            else:
                assert strategy != STRATEGY_GEQO, (sql, threshold)

    def test_geqo_disabled_never_selected(self, imdb_db):
        rng = Random(0)
        for trial in range(self.N_RANDOM_GRAPHS // 2):
            sql = random_join_query(imdb_db.schema, rng, rng.randint(3, 6))
            query = bind_sql(sql, imdb_db.schema, name=f"prop-nogeqo-{trial}")
            config = SIMULATION_CONFIG.with_overrides(geqo=False, geqo_threshold=2)
            result = Planner(imdb_db, config).plan_with_info(query)
            assert result.strategy in (STRATEGY_DP, STRATEGY_GREEDY)

    def test_geqo_plan_still_covers_all_aliases(self, imdb_db):
        rng = Random(0)
        config = SIMULATION_CONFIG.with_overrides(geqo=True, geqo_threshold=2)
        for trial in range(self.N_RANDOM_GRAPHS // 2):
            sql = random_join_query(imdb_db.schema, rng, rng.randint(4, 6))
            query = bind_sql(sql, imdb_db.schema, name=f"prop-cover-{trial}")
            plan = Planner(imdb_db, config).plan(query)
            assert strip_decorations(plan).aliases == frozenset(query.aliases)


class TestPlanner:
    def test_small_query_uses_dp(self, imdb_db, queries):
        planner = Planner(imdb_db)
        result = planner.plan_with_info(queries["three"])
        assert result.strategy == STRATEGY_DP
        assert result.planning_time_ms > 0

    def test_geqo_used_beyond_threshold(self, imdb_db, job_workload):
        config = SIMULATION_CONFIG.with_overrides(geqo_threshold=6)
        planner = Planner(imdb_db, config)
        big = next(q for q in job_workload if q.num_relations >= 8)
        result = planner.plan_with_info(big.bound)
        assert result.strategy == STRATEGY_GEQO

    def test_forced_join_order_respected(self, imdb_db, queries):
        planner = Planner(imdb_db)
        q = queries["three"]
        hints = HintSet.from_join_order(["k", "mk", "t"])
        result = planner.plan_with_info(q, hints)
        assert result.strategy == STRATEGY_FORCED
        assert join_order_of(result.plan) == ("k", "mk", "t")

    def test_leading_prefix_respected(self, imdb_db, queries):
        planner = Planner(imdb_db)
        q = queries["five"]
        hints = HintSet.from_leading_prefix(["cn", "mc"])
        plan = planner.plan(q, hints)
        assert join_order_of(plan)[:2] == ("cn", "mc")

    def test_join_collapse_limit_forces_from_order(self, imdb_db, queries):
        config = SIMULATION_CONFIG.with_overrides(join_collapse_limit=1)
        planner = Planner(imdb_db, config)
        q = queries["three"]
        plan = planner.plan(q)
        assert join_order_of(plan) == tuple(q.aliases)

    def test_aggregate_decoration_added(self, imdb_db, queries):
        planner = Planner(imdb_db)
        result = planner.plan_with_info(queries["three"])
        assert result.plan.label().startswith("Aggregate")

    def test_operator_toggle_hint_changes_join_types(self, imdb_db, queries):
        planner = Planner(imdb_db)
        q = queries["five"]
        baseline_types = {j.join_type for j in plan_join_nodes(planner.plan(q))}
        hints = HintSet(toggles=OperatorToggles(hashjoin=False))
        without_hash = {j.join_type for j in plan_join_nodes(planner.plan(q, hints))}
        assert JoinType.HASH not in without_hash or JoinType.HASH not in baseline_types

    def test_scan_nodes_have_estimates(self, imdb_db, queries):
        planner = Planner(imdb_db)
        plan = planner.plan(queries["five"])
        for scan in plan_scan_nodes(plan):
            assert scan.estimated_rows >= 1.0
            assert scan.estimated_cost > 0.0

    def test_small_effective_cache_inflates_planning_time_for_big_queries(
        self, imdb_db, job_workload
    ):
        big = next(q for q in job_workload if q.num_relations >= 11)
        small_cache = Planner(imdb_db, SIMULATION_CONFIG)
        large_cache = Planner(
            imdb_db, SIMULATION_CONFIG.with_overrides(effective_cache_size=32 * 1024**3)
        )
        slow = small_cache.plan_with_info(big.bound).planning_time_ms
        fast = large_cache.plan_with_info(big.bound).planning_time_ms
        assert slow > fast
