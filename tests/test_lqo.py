"""Tests for the learned query optimizers and the registry."""

import pytest

from repro.lqo import available_methods, create_optimizer, method_info
from repro.lqo.base import LQOEnvironment
from repro.plans.hints import BAO_HINT_SETS
from repro.plans.properties import is_left_deep


@pytest.fixture(scope="module")
def small_split(job_workload):
    """A tiny but family-structured train/test split for fast optimizer tests."""
    train_ids = ["1a", "1b", "2a", "2b", "3a", "6a", "6b", "17a", "32a"]
    test_ids = ["1c", "2c", "6c"]
    return (
        [job_workload.by_id(q) for q in train_ids],
        [job_workload.by_id(q) for q in test_ids],
    )


@pytest.fixture(scope="module")
def shared_env(imdb_db):
    return LQOEnvironment(imdb_db, seed=0)


class TestRegistry:
    def test_all_methods_registered(self):
        assert set(available_methods()) == {
            "postgres", "neo", "bao", "balsa", "leon", "hybridqo", "rtos", "lero", "loger",
        }

    def test_main_evaluation_methods(self):
        main = available_methods(main_evaluation_only=True)
        assert main[0] == "postgres"
        assert set(main) == {"postgres", "bao", "hybridqo", "neo", "balsa", "leon"}
        for name in ("rtos", "lero", "loger"):
            assert not method_info(name).in_main_evaluation

    def test_method_info_unknown(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            method_info("oracle")

    def test_encoding_attached_to_learned_methods(self):
        assert method_info("postgres").encoding is None
        assert method_info("neo").encoding is not None


class TestEnvironment:
    def test_hints_from_plan_roundtrip(self, shared_env, job_workload):
        query = job_workload.by_id("2a")
        plan = shared_env.plan_with_hints(query.bound).plan
        hints = shared_env.hints_from_plan(query.bound, plan)
        hints.validate(query.bound.aliases)
        assert set(hints.leading) == set(query.bound.aliases)
        forced = shared_env.plan_with_hints(query.bound, hints)
        assert forced.plan.aliases == plan.aliases

    def test_execute_plan_hot_cache_protocol(self, shared_env, job_workload):
        query = job_workload.by_id("1a")
        plan = shared_env.plan_with_hints(query.bound).plan
        measured = shared_env.execute_plan(query.bound, plan, runs=3, cold_start=True)
        assert len(measured.execution_times_ms) == 3
        assert measured.reported_ms <= measured.first_run_ms * 1.1

    def test_query_plan_vector_size(self, shared_env, job_workload):
        query = job_workload.by_id("1a")
        plan = shared_env.plan_with_hints(query.bound).plan
        vector = shared_env.query_plan_vector(query.bound, plan)
        assert vector.shape == (shared_env.query_plan_vector_size,)


class TestPostgresBaseline:
    def test_no_training_and_zero_inference(self, shared_env, small_split, job_workload):
        optimizer = create_optimizer("postgres", shared_env)
        report = optimizer.fit(small_split[0])
        assert report.training_time_s == 0.0
        planned = optimizer.plan_query(job_workload.by_id("1c"))
        assert planned.inference_time_ms == 0.0
        assert planned.planning_time_ms > 0.0
        assert planned.plan.aliases == frozenset(job_workload.by_id("1c").bound.aliases)


class TestBao:
    def test_fit_and_plan(self, shared_env, small_split):
        train, test = small_split
        bao = create_optimizer("bao", shared_env, training_passes=1, retrain_every=5)
        report = bao.fit(train)
        assert report.executed_plans >= len(train) * len(BAO_HINT_SETS)
        planned = bao.plan_query(test[0])
        assert planned.metadata["chosen_arm"] in {h.name for h in BAO_HINT_SETS}
        assert planned.plan.aliases == frozenset(test[0].bound.aliases)
        assert planned.inference_time_ms > 0.0

    def test_integrates_with_dbms_flag(self, shared_env):
        assert create_optimizer("bao", shared_env).integrates_with_dbms is True
        assert create_optimizer("neo", shared_env).integrates_with_dbms is False


class TestNeoAndBalsa:
    def test_neo_produces_valid_plans(self, shared_env, small_split):
        train, test = small_split
        neo = create_optimizer("neo", shared_env, training_iterations=1)
        report = neo.fit(train)
        assert report.executed_plans >= len(train)  # bootstrap + iteration
        for query in test:
            planned = neo.plan_query(query)
            assert planned.plan.aliases == frozenset(query.bound.aliases)
            assert planned.hints.forces_join_order

    def test_balsa_bootstrap_uses_cost_not_execution(self, shared_env, small_split):
        train, _ = small_split
        balsa = create_optimizer("balsa", shared_env, training_iterations=0)
        report = balsa.fit(train)
        # Cost-model bootstrap does not execute any plan.
        assert report.executed_plans == 0

    def test_rtos_is_left_deep(self, shared_env, small_split):
        train, test = small_split
        rtos = create_optimizer("rtos", shared_env, training_iterations=0)
        rtos.fit(train)
        planned = rtos.plan_query(test[0])
        assert is_left_deep(planned.plan)


class TestLeonHybridLero:
    def test_leon_plans_and_is_slowest_at_inference(self, shared_env, small_split):
        train, test = small_split
        leon = create_optimizer("leon", shared_env)
        leon.fit(train)
        postgres = create_optimizer("postgres", shared_env)
        postgres.fit([])
        leon_planned = leon.plan_query(test[0])
        assert leon_planned.plan.aliases == frozenset(test[0].bound.aliases)
        assert leon_planned.inference_time_ms > 0.5

    def test_hybridqo_selects_among_candidates(self, shared_env, small_split):
        train, test = small_split
        hybrid = create_optimizer("hybridqo", shared_env, mcts_iterations=10)
        hybrid.fit(train)
        planned = hybrid.plan_query(test[1])
        assert planned.metadata["n_candidates"] >= 1
        assert planned.plan.aliases == frozenset(test[1].bound.aliases)

    def test_lero_uses_pairwise_comparator(self, shared_env, small_split):
        train, test = small_split
        lero = create_optimizer("lero", shared_env)
        lero.fit(train)
        planned = lero.plan_query(test[0])
        assert planned.plan.aliases == frozenset(test[0].bound.aliases)

    def test_loger_restricted_to_join_toggle_arms(self, shared_env):
        loger = create_optimizer("loger", shared_env)
        arm_names = {arm.name for arm in loger.arms}
        assert arm_names == {"all_on", "no_nestloop", "no_mergejoin", "no_hashjoin"}
