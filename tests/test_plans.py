"""Tests for physical plan nodes, plan properties and the hint mechanism."""

import pytest

from repro.errors import HintError, PlanError
from repro.plans.hints import BAO_HINT_SETS, NO_HINTS, HintSet, OperatorToggles
from repro.plans.physical import (
    JoinNode,
    JoinType,
    ScanNode,
    ScanType,
    plan_depth,
    plan_join_nodes,
    plan_scan_nodes,
    validate_plan,
)
from repro.plans.properties import (
    PlanShape,
    classify_plan_shape,
    count_join_types,
    is_bushy,
    is_left_deep,
    join_order_of,
)
from repro.sql.binder import JoinPredicate


def scan(alias: str, table: str = "title") -> ScanNode:
    return ScanNode(alias=alias, table=table, scan_type=ScanType.SEQ)


def join(left, right, la="a", lc="id", ra="b", rc="id") -> JoinNode:
    return JoinNode(
        join_type=JoinType.HASH,
        left=left,
        right=right,
        predicates=(JoinPredicate(la, lc, ra, rc),),
    )


class TestPlanNodes:
    def test_scan_requires_alias_and_table(self):
        with pytest.raises(PlanError):
            ScanNode(alias="", table="title")

    def test_index_scan_requires_index_column(self):
        with pytest.raises(PlanError):
            ScanNode(alias="t", table="title", scan_type=ScanType.INDEX)

    def test_join_rejects_overlapping_children(self):
        with pytest.raises(PlanError):
            JoinNode(join_type=JoinType.HASH, left=scan("a"), right=scan("a"))

    def test_join_rejects_unrelated_predicate(self):
        with pytest.raises(PlanError):
            JoinNode(
                join_type=JoinType.HASH,
                left=scan("a"),
                right=scan("b"),
                predicates=(JoinPredicate("x", "id", "y", "id"),),
            )

    def test_aliases_and_traversal(self):
        plan = join(join(scan("a"), scan("b")), scan("c", "keyword"), la="a", ra="c")
        assert plan.aliases == frozenset({"a", "b", "c"})
        assert len(plan_scan_nodes(plan)) == 3
        assert len(plan_join_nodes(plan)) == 2
        assert plan_depth(plan) == 3
        assert plan.node_count() == 5

    def test_with_estimates_is_non_destructive(self):
        node = scan("a").with_estimates(100, 42.0)
        assert node.estimated_rows == 100
        assert scan("a").estimated_rows == -1.0

    def test_validate_plan(self):
        plan = join(scan("a"), scan("b"))
        validate_plan(plan, ["a", "b"])
        with pytest.raises(PlanError):
            validate_plan(plan, ["a", "b", "c"])

    def test_pretty_contains_labels(self):
        plan = join(scan("a"), scan("b"))
        rendered = plan.pretty()
        assert "Hash Join" in rendered and "Seq Scan" in rendered


class TestPlanProperties:
    def test_left_deep_classification(self):
        plan = join(join(scan("a"), scan("b")), scan("c"), la="a", ra="c")
        assert is_left_deep(plan)
        assert not is_bushy(plan)
        assert classify_plan_shape(plan) is PlanShape.LEFT_DEEP

    def test_bushy_classification(self):
        left = join(scan("a"), scan("b"))
        right = join(scan("c"), scan("d"), la="c", ra="d")
        plan = join(left, right, la="a", ra="c")
        assert is_bushy(plan)
        assert classify_plan_shape(plan) is PlanShape.BUSHY

    def test_right_deep_classification(self):
        plan = join(scan("c"), join(scan("a"), scan("b")), la="c", ra="a")
        assert classify_plan_shape(plan) is PlanShape.RIGHT_DEEP

    def test_single_relation(self):
        assert classify_plan_shape(scan("a")) is PlanShape.SINGLE_RELATION

    def test_join_order(self):
        plan = join(join(scan("a"), scan("b")), scan("c"), la="a", ra="c")
        assert join_order_of(plan) == ("a", "b", "c")

    def test_count_join_types(self):
        plan = join(join(scan("a"), scan("b")), scan("c"), la="a", ra="c")
        assert count_join_types(plan) == {"Hash Join": 2}


class TestHints:
    def test_empty_hint_set(self):
        assert NO_HINTS.is_empty
        assert not NO_HINTS.forces_join_order

    def test_from_join_order(self):
        hints = HintSet.from_join_order(["a", "b", "c"], scan_methods={"a": ScanType.SEQ})
        assert hints.forces_join_order
        assert hints.scan_method_for("a") is ScanType.SEQ
        assert hints.scan_method_for("z") is None

    def test_validation_rejects_unknown_aliases(self):
        hints = HintSet.from_join_order(["a", "zz"])
        with pytest.raises(HintError):
            hints.validate(["a", "b"])

    def test_validation_rejects_duplicate_order(self):
        hints = HintSet.from_join_order(["a", "a"])
        with pytest.raises(HintError):
            hints.validate(["a", "b"])

    def test_leading_prefix_is_not_exact(self):
        hints = HintSet.from_leading_prefix(["a", "b"])
        assert hints.leading == ("a", "b")
        assert not hints.forces_join_order

    def test_toggles_override_dict(self):
        toggles = OperatorToggles(nestloop=False, hashjoin=True)
        overrides = toggles.active_overrides()
        assert overrides == {"enable_nestloop": False, "enable_hashjoin": True}

    def test_bao_hint_sets_unique_names(self):
        names = [h.name for h in BAO_HINT_SETS]
        assert len(names) == len(set(names))
        assert "all_on" in names and "disable_nestloop" in names

    def test_describe_mentions_components(self):
        hints = HintSet.from_join_order(["a", "b"], join_methods={frozenset({"a", "b"}): JoinType.HASH})
        text = hints.describe()
        assert "join order" in text and "forced join methods" in text
