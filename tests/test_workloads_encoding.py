"""Tests for the workload generators and the query/plan encoders."""

import numpy as np
import pytest

from repro.encoding.featurizers import ENCODING_SPECS, featurizer_for, table1_rows
from repro.encoding.plan_encoding import PlanTreeEncoder
from repro.encoding.query_encoding import QueryEncoder
from repro.errors import EncodingError, WorkloadError
from repro.optimizer.planner import Planner
from repro.workloads import build_ext_job_workload
from repro.workloads.job import JOB_FAMILY_SIZES
from repro.workloads.stack import STACK_VARIANTS_PER_FAMILY


class TestJobWorkload:
    def test_113_queries_in_33_families(self, job_workload):
        assert len(job_workload) == 113
        assert len(job_workload.family_ids()) == 33
        assert sum(JOB_FAMILY_SIZES.values()) == 113

    def test_family_sizes_match_spec(self, job_workload):
        families = job_workload.families()
        for family, queries in families.items():
            assert len(queries) == JOB_FAMILY_SIZES[family]

    def test_variants_share_joins_but_differ_in_filters(self, job_workload):
        family = job_workload.families()["2"]
        joins = {tuple(sorted(str(j) for j in q.bound.joins)) for q in family}
        assert len(joins) == 1
        filters = {tuple(sorted(str(f) for f in q.bound.filters)) for q in family}
        assert len(filters) > 1

    def test_all_queries_connected(self, job_workload):
        assert all(q.bound.is_connected() for q in job_workload)

    def test_join_count_range_matches_job(self, job_workload):
        joins = [q.num_joins for q in job_workload]
        assert min(joins) == 3
        assert max(joins) >= 14  # template 29 is the largest, as in JOB

    def test_largest_query_is_family_29(self, job_workload):
        largest = max(job_workload, key=lambda q: q.num_relations)
        assert largest.family == "29"
        assert largest.num_relations == 17

    def test_queries_executable(self, imdb_db, job_workload):
        """A few representative queries plan and execute without errors."""
        from repro.executor.engine import ExecutionEngine

        planner = Planner(imdb_db)
        engine = ExecutionEngine(imdb_db)
        for qid in ("1a", "6b", "17a", "32a"):
            query = job_workload.by_id(qid)
            result = engine.execute(query.bound, planner.plan(query.bound))
            assert result.error is None

    def test_subset_and_lookup(self, job_workload):
        subset = job_workload.subset(["1a", "2a"])
        assert len(subset) == 2
        with pytest.raises(WorkloadError):
            job_workload.subset(["nonexistent"])
        with pytest.raises(WorkloadError):
            job_workload.by_id("999z")


class TestStackAndExtJob:
    def test_stack_family_structure(self, stack_workload):
        assert len(stack_workload) == 14 * STACK_VARIANTS_PER_FAMILY
        assert len(stack_workload.family_ids()) == 14
        assert "q9" not in stack_workload.family_ids()
        assert "q10" not in stack_workload.family_ids()

    def test_stack_queries_connected_and_small(self, stack_workload):
        assert all(q.bound.is_connected() for q in stack_workload)
        assert max(q.num_joins for q in stack_workload) <= 6

    def test_ext_job_has_group_or_order_by(self, imdb_db):
        ext = build_ext_job_workload(imdb_db.schema)
        assert len(ext) == 24
        for query in ext:
            statement = query.bound.statement
            assert statement.group_by or statement.order_by


class TestQueryEncoder:
    def test_encoding_size_and_determinism(self, imdb_db, job_workload):
        encoder = QueryEncoder(imdb_db)
        query = job_workload.by_id("1a").bound
        first = encoder.encode_vector(query)
        second = encoder.encode_vector(query)
        assert first.shape == (encoder.encoding_size,)
        assert np.array_equal(first, second)

    def test_variants_of_same_family_differ(self, imdb_db, job_workload):
        encoder = QueryEncoder(imdb_db)
        a = encoder.encode_vector(job_workload.by_id("2a").bound)
        b = encoder.encode_vector(job_workload.by_id("2b").bound)
        assert not np.array_equal(a, b)

    def test_different_families_have_different_presence(self, imdb_db, job_workload):
        encoder = QueryEncoder(imdb_db)
        a = encoder.encode(job_workload.by_id("2a").bound)
        b = encoder.encode(job_workload.by_id("7a").bound)
        assert not np.array_equal(a.table_presence, b.table_presence)

    def test_selectivities_in_unit_interval(self, imdb_db, job_workload):
        encoder = QueryEncoder(imdb_db)
        encoding = encoder.encode(job_workload.by_id("22a").bound)
        assert np.all(encoding.filter_selectivity >= 0.0)
        assert np.all(encoding.filter_selectivity <= 1.0)
        assert np.all(encoding.filter_values >= 0.0)
        assert np.all(encoding.filter_values <= 1.0)

    def test_adjacency_reflects_joins(self, imdb_db, job_workload):
        encoder = QueryEncoder(imdb_db)
        encoding = encoder.encode(job_workload.by_id("1a").bound)
        assert encoding.join_adjacency.sum() == len(job_workload.by_id("1a").bound.joins)

    def test_rejects_query_from_other_schema(self, imdb_db, stack_workload):
        encoder = QueryEncoder(imdb_db)
        with pytest.raises(EncodingError):
            encoder.encode(stack_workload.queries[0].bound)


class TestPlanEncoder:
    def test_node_feature_size_consistent(self, imdb_db, job_workload):
        planner = Planner(imdb_db)
        encoder = PlanTreeEncoder(imdb_db.schema)
        plan = planner.plan(job_workload.by_id("3a").bound)
        tree = encoder.encode(plan)
        matrix = tree.all_features()
        assert matrix.shape[1] == encoder.node_feature_size
        assert tree.node_count() == matrix.shape[0]

    def test_pooled_vector_fixed_size(self, imdb_db, job_workload):
        planner = Planner(imdb_db)
        encoder = PlanTreeEncoder(imdb_db.schema)
        sizes = set()
        for qid in ("1a", "17a", "29a"):
            plan = planner.plan(job_workload.by_id(qid).bound)
            sizes.add(encoder.pooled_vector(plan).shape)
        assert sizes == {(encoder.pooled_size,)}

    def test_different_plans_encode_differently(self, imdb_db, job_workload):
        from repro.optimizer.enumeration import left_deep_plan_from_order

        planner = Planner(imdb_db)
        encoder = PlanTreeEncoder(imdb_db.schema)
        query = job_workload.by_id("2a").bound
        a = encoder.pooled_vector(planner.plan(query))
        b = encoder.pooled_vector(
            left_deep_plan_from_order(query, planner.cost_model, list(reversed(query.aliases)))
        )
        assert not np.array_equal(a, b)

    def test_table_identity_optional(self, imdb_db, job_workload):
        with_id = PlanTreeEncoder(imdb_db.schema, include_table_identity=True)
        without_id = PlanTreeEncoder(imdb_db.schema, include_table_identity=False)
        assert with_id.node_feature_size > without_id.node_feature_size


class TestFeaturizers:
    def test_table1_rows_cover_all_methods(self):
        rows = table1_rows()
        assert [row["LQO"] for row in rows] == [
            "Neo", "RTOS", "Bao", "Balsa", "Lero", "LEON", "LOGER", "HybridQO",
        ]

    def test_bao_and_lero_have_no_query_encoding(self):
        assert not ENCODING_SPECS["bao"].uses_query_encoding
        assert not ENCODING_SPECS["lero"].uses_query_encoding
        assert ENCODING_SPECS["neo"].uses_query_encoding

    def test_ltr_methods(self):
        assert ENCODING_SPECS["lero"].ml_model == "LTR"
        assert ENCODING_SPECS["leon"].ml_model == "LTR"
        assert ENCODING_SPECS["neo"].ml_model == "Regression"

    def test_featurizer_for_unknown_method(self):
        with pytest.raises(EncodingError):
            featurizer_for("not-a-method")
