"""Tests of the plan-serving control plane and the PR-6 correctness pass.

Covers:

* served plans are byte-identical (under ``pickle.dumps``) to a direct
  in-process ``Planner`` call for the same (query, config, hints),
* cache-hit metadata and the shared cross-request cache,
* HMAC authentication: an unauthenticated client is rejected *before*
  ``pickle.loads`` (poisoned-unpickler proof), a mis-keyed one fails loudly,
* admission control: explicit reject frames (``PlanRejected``) instead of
  silent stalls, per-client and global limits, opt-in client backoff,
* generation-bump invalidation: a catalog/statistics bump retires every
  pre-bump plan without restarting the server,
* ``PlanCache`` under thread hammering: no lost counter updates, requests
  always equal hits + misses, and a generation bump never serves a pre-bump
  entry,
* the ``BoundQuery`` fingerprint-memo pickle-hygiene regression,
* sampler-config validation of the random SQL generator.
"""

import dataclasses
import json
import pickle
import threading

import pytest

from repro.config import SIMULATION_CONFIG
from repro.errors import PlanRejected, PlanServiceError, WorkloadError
from repro.optimizer.planner import Planner
from repro.plans.hints import HintSet
from repro.runtime import netqueue
from repro.runtime.fingerprint import query_fingerprint
from repro.runtime.netqueue import QueueAuthError
from repro.runtime.plan_cache import PlanCache
from repro.runtime.planclient import PlanClient
from repro.runtime.planserver import PlanServer, PlanServerStats, main as planserver_main
from repro.sql.binder import bind_sql
from repro.storage.registry import get_process_registry
from repro.storage.spec import DatabaseSpec
from repro.workloads.random_gen import (
    AggregateSamplerConfig,
    JoinSamplerConfig,
    PredicateSamplerConfig,
    RandomSqlGenerator,
)

SECRET = "plan-serving-test-secret"

TWO_WAY = (
    "SELECT COUNT(*) FROM title AS t "
    "JOIN movie_companies AS mc ON t.id = mc.movie_id"
)
THREE_WAY = (
    "SELECT COUNT(*) FROM title AS t "
    "JOIN movie_companies AS mc ON t.id = mc.movie_id "
    "JOIN movie_keyword AS mk ON t.id = mk.movie_id"
)


@pytest.fixture(scope="module")
def database():
    spec = DatabaseSpec.create("imdb", scale=0.1, seed=42, config=SIMULATION_CONFIG)
    return get_process_registry().get(spec)


def wire_bytes(plan) -> bytes:
    """Pickle bytes of a plan after one serialization hop.

    The served plan has crossed the wire (one pickle round trip) already;
    CPython's unpickler interns one-character strings, which can only *add*
    object sharing to the graph.  Normalizing the direct plan through the
    same hop makes the byte-identity comparison exact.
    """
    return pickle.dumps(pickle.loads(pickle.dumps(plan)))


@pytest.fixture()
def server(database):
    server = PlanServer(database, secret=SECRET)
    yield server
    server.close()


@pytest.fixture()
def client(server):
    return PlanClient(server.url, client_id="test", secret=SECRET, retries=0)


# ---------------------------------------------------------------------------
# Serving correctness
# ---------------------------------------------------------------------------


class TestServedPlans:
    def test_ping(self, client, database):
        assert client.ping() == database.name

    def test_served_plan_is_byte_identical_to_direct_planner(self, client, database):
        served = client.plan(THREE_WAY)
        direct = Planner(database, plan_cache=PlanCache())  # private cache: no sharing
        result = direct.plan_with_info(bind_sql(THREE_WAY, database.schema))
        assert pickle.dumps(served.plan) == wire_bytes(result.plan)
        assert served.strategy == result.strategy
        assert served.estimated_cost == result.estimated_cost
        assert served.planning_time_ms == result.planning_time_ms

    def test_served_plan_honours_config_and_hints(self, client, database):
        config = dataclasses.replace(SIMULATION_CONFIG, join_collapse_limit=1)
        hints = HintSet(leading=("mc", "t"), join_order_exact=True, name="forced")
        served = client.plan(TWO_WAY, hints=hints, config=config)
        direct = Planner(database, config=config, plan_cache=PlanCache())
        result = direct.plan_with_info(bind_sql(TWO_WAY, database.schema), hints)
        assert pickle.dumps(served.plan) == wire_bytes(result.plan)
        assert served.strategy == result.strategy

    def test_second_request_is_a_shared_cache_hit(self, server, client):
        first = client.plan(THREE_WAY)
        assert first.cache_hit is False
        second = client.plan(THREE_WAY)
        assert second.cache_hit is True
        # A *different* client shares the same server-side cache.
        other = PlanClient(server.url, client_id="other", secret=SECRET, retries=0)
        assert other.plan(THREE_WAY).cache_hit is True
        stats = client.stats()
        assert stats["served"] == 3
        assert stats["planned"] == 1
        assert stats["cache"]["hits"] + stats["cache"]["misses"] == 3

    def test_invalid_sql_is_an_error_frame_not_a_crash(self, client):
        with pytest.raises(PlanServiceError, match="SQLSyntaxError"):
            client.plan("SELECT FROM FROM nope")
        with pytest.raises(PlanServiceError, match="BindingError"):
            client.plan("SELECT COUNT(*) FROM no_such_table AS x")
        with pytest.raises(PlanServiceError, match="non-empty 'sql'"):
            client.plan("   ")

    def test_invalid_hints_are_a_planning_error(self, client):
        bad = HintSet(leading=("zz", "t"), join_order_exact=True)
        with pytest.raises(PlanServiceError, match="HintError"):
            client.plan(TWO_WAY, hints=bad)

    def test_server_errors_still_count_and_do_not_leak_inflight(self, server, client):
        with pytest.raises(PlanServiceError):
            client.plan("SELECT broken")
        stats = server.stats()
        assert stats.errors == 1
        assert stats.inflight == 0


# ---------------------------------------------------------------------------
# Authentication
# ---------------------------------------------------------------------------


class TestServingAuth:
    def test_unauthenticated_client_rejected_before_unpickling(
        self, server, client, monkeypatch
    ):
        """An unsigned frame must be turned away while still opaque bytes."""

        def poisoned_loads(blob):
            raise AssertionError("pickle.loads reached with an unauthenticated peer")

        monkeypatch.setattr(netqueue.pickle, "loads", poisoned_loads)
        intruder = PlanClient(server.url, secret="", retries=0)
        with pytest.raises(QueueAuthError, match="unauthenticated"):
            intruder.plan(TWO_WAY)
        monkeypatch.undo()
        # The server is unharmed and keeps serving keyed clients.
        assert client.ping()
        assert client.stats()["auth_rejects"] == 1

    def test_wrong_secret_rejected_loudly(self, server):
        wrong = PlanClient(server.url, secret="not-the-secret", retries=0)
        with pytest.raises(QueueAuthError, match="signature mismatch"):
            wrong.plan(TWO_WAY)
        assert server.stats().auth_rejects == 1


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestAdmissionControl:
    def test_overload_gets_an_explicit_reject_frame(self, database, monkeypatch):
        server = PlanServer(
            database, secret=SECRET, max_client_inflight=1, max_total_inflight=1
        )
        try:
            admitted = threading.Event()
            release = threading.Event()
            original = server._plan_admitted

            def slow_plan(request):
                admitted.set()
                assert release.wait(timeout=10)
                return original(request)

            monkeypatch.setattr(server, "_plan_admitted", slow_plan)
            first_result = {}

            def first_request():
                client = PlanClient(server.url, client_id="a", secret=SECRET, retries=0)
                first_result["plan"] = client.plan(TWO_WAY)

            thread = threading.Thread(target=first_request)
            thread.start()
            assert admitted.wait(timeout=10)
            # Slot taken: the next request is rejected explicitly, not queued.
            rejected = PlanClient(server.url, client_id="b", secret=SECRET, retries=0)
            with pytest.raises(PlanRejected, match="at capacity") as exc_info:
                rejected.plan(TWO_WAY)
            assert exc_info.value.retry_after_s > 0
            release.set()
            thread.join(timeout=10)
            assert first_result["plan"].cache_hit is False
            stats = server.stats()
            assert stats.rejected == 1
            assert stats.served == 1
            assert stats.inflight == 0
        finally:
            release.set()
            server.close()

    def test_per_client_limit_is_separate_from_global(self, database):
        server = PlanServer(
            database, secret=SECRET, max_client_inflight=1, max_total_inflight=4
        )
        try:
            assert server._admit("a") is True
            assert server._admit("a") is False  # per-client cap
            assert server._admit("b") is True  # other clients unaffected
            server._release("a")
            assert server._admit("a") is True
            server._release("a")
            server._release("b")
            assert server.stats().inflight == 0
        finally:
            server.close()

    def test_client_opt_in_backoff_retries_rejects(self, server, monkeypatch):
        client = PlanClient(server.url, secret=SECRET, retries=0, reject_retries=2)
        calls = {"n": 0}

        def flaky_request_once(request):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise PlanRejected("busy", retry_after_s=0.001)
            return {"ok": True, "stats": {"served": 7}}

        monkeypatch.setattr(client, "_request_once", flaky_request_once)
        assert client.stats() == {"served": 7}
        assert calls["n"] == 3

    def test_reject_budget_exhaustion_propagates(self, server, monkeypatch):
        client = PlanClient(server.url, secret=SECRET, retries=0, reject_retries=1)

        def always_busy(request):
            raise PlanRejected("busy", retry_after_s=0.001)

        monkeypatch.setattr(client, "_request_once", always_busy)
        with pytest.raises(PlanRejected):
            client.stats()


# ---------------------------------------------------------------------------
# Invalidation
# ---------------------------------------------------------------------------


class TestInvalidation:
    def test_generation_bump_invalidates_without_restart(self, server, client):
        assert client.plan(THREE_WAY).cache_hit is False
        assert client.plan(THREE_WAY).cache_hit is True
        before = client.plan(THREE_WAY).generation

        generations = client.invalidate()
        assert all(gen > 0 for gen in generations.values())

        after = client.plan(THREE_WAY)
        assert after.cache_hit is False  # pre-bump entry is never served
        assert after.generation > before
        assert client.plan(THREE_WAY).cache_hit is True  # re-cached under the new generation
        stats = client.stats()
        assert stats["cache"]["invalidations"] >= 1

    def test_hit_rate_drop_is_visible_in_stats(self, server, client):
        for _ in range(4):
            client.plan(TWO_WAY)
        high = client.stats()["cache"]["hit_rate"]
        client.invalidate()
        client.plan(TWO_WAY)  # forced miss
        low = client.stats()["cache"]["hit_rate"]
        assert low < high


# ---------------------------------------------------------------------------
# Stats frames
# ---------------------------------------------------------------------------


class TestStatsFrames:
    def test_stats_snapshot_round_trips_as_json(self, server, client):
        client.plan(TWO_WAY)
        snapshot = server.stats()
        assert isinstance(snapshot, PlanServerStats)
        decoded = json.loads(snapshot.to_json())
        assert decoded == snapshot.to_dict()
        for key in ("uptime_s", "served", "planned", "cache", "generations", "latency_ms"):
            assert key in decoded
        assert decoded["latency_ms"]["count"] == 1
        assert decoded["latency_ms"]["p50"] > 0
        assert "PlanServer(" in snapshot.describe()
        assert "PlanServer(" in server.describe()

    def test_wire_stats_match_server_stats(self, server, client):
        client.plan(TWO_WAY)
        wire = client.stats()
        local = server.stats().to_dict()
        for key in ("served", "planned", "rejected", "auth_rejects", "errors"):
            assert wire[key] == local[key]

    def test_cli_rejects_unknown_generator(self, capsys):
        assert planserver_main(["--generator", "no-such-generator"]) == 2
        assert "cannot build database" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# PlanCache under concurrency (satellite: locked reads + generation bumps)
# ---------------------------------------------------------------------------


class TestPlanCacheConcurrency:
    def test_no_lost_counter_updates_under_hammering(self):
        cache = PlanCache(max_entries=64)
        threads, per_thread, keyspace = 8, 300, 32
        barrier = threading.Barrier(threads)
        errors = []

        def hammer(worker: int) -> None:
            try:
                barrier.wait(timeout=10)
                for i in range(per_thread):
                    key = ("q%d" % (i % keyspace), "c", "h", "", 0)
                    if cache.get(key) is None:
                        cache.put(key, ("plan", worker, i))
                    if i % 50 == 7:
                        len(cache)
                        cache.describe()
                    if i % 97 == 13:
                        cache.clear()
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        workers = [threading.Thread(target=hammer, args=(w,)) for w in range(threads)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=30)
        assert not errors
        snapshot = cache.stats_snapshot()
        # Every get() was accounted exactly once, no update was lost.
        assert snapshot.requests == threads * per_thread
        assert snapshot.hits + snapshot.misses == snapshot.requests

    def test_generation_bump_never_serves_a_pre_bump_entry(self):
        cache = PlanCache(max_entries=256)
        scope = "scope-a"
        stop = threading.Event()
        errors = []

        def bumper() -> None:
            while not stop.is_set():
                cache.invalidate_scope(scope)

        def reader_writer() -> None:
            try:
                while not stop.is_set():
                    generation = cache.generation(scope)
                    key = ("q", "c", "h", scope, generation)
                    value = cache.get(key)
                    if value is None:
                        cache.put(key, generation)
                    else:
                        # The key embeds the generation it was stored under:
                        # serving a pre-bump entry would surface a mismatch.
                        assert value == generation
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=bumper)] + [
            threading.Thread(target=reader_writer) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        timer = threading.Timer(0.5, stop.set)
        timer.start()
        for thread in threads:
            thread.join(timeout=30)
        timer.cancel()
        assert not errors
        assert cache.stats_snapshot().invalidations > 0

    def test_scoped_bump_spares_other_scopes(self):
        cache = PlanCache()
        key_a = ("q", "c", "h", "scope-a", cache.generation("scope-a"))
        key_b = ("q", "c", "h", "scope-b", cache.generation("scope-b"))
        cache.put(key_a, "plan-a")
        cache.put(key_b, "plan-b")
        cache.invalidate_scope("scope-a")
        assert key_a not in cache  # purged eagerly
        assert cache.get(key_b) == "plan-b"  # untouched scope still serves
        assert ("q", "c", "h", "scope-a", cache.generation("scope-a")) != key_a

    def test_global_bump_retires_every_scope(self):
        cache = PlanCache()
        key = ("q", "c", "h", "scope-a", cache.generation("scope-a"))
        cache.put(key, "plan")
        cache.invalidate_scope(None)
        assert len(cache) == 0
        assert cache.generation("scope-a") == key[4] + 1


# ---------------------------------------------------------------------------
# Fingerprint memo pickle hygiene (satellite)
# ---------------------------------------------------------------------------


class TestFingerprintMemoHygiene:
    def test_memo_is_stripped_on_pickle_and_recomputed(self, database):
        bound = bind_sql(THREE_WAY, database.schema)
        fingerprint = query_fingerprint(bound)
        assert getattr(bound, "_repro_fingerprint") == fingerprint  # memoized
        restored = pickle.loads(pickle.dumps(bound))
        assert not hasattr(restored, "_repro_fingerprint")  # memo never travels
        assert query_fingerprint(restored) == fingerprint  # recomputed from content

    def test_tampered_memo_is_not_trusted_across_pickling(self, database):
        bound = bind_sql(THREE_WAY, database.schema)
        honest = query_fingerprint(bound)
        bound._repro_fingerprint = "deadbeefdeadbeef"  # poisoned sender-side memo
        restored = pickle.loads(pickle.dumps(bound))
        assert query_fingerprint(restored) == honest

    def test_round_tripped_query_plans_identically(self, database):
        bound = bind_sql(THREE_WAY, database.schema)
        query_fingerprint(bound)  # memoize before shipping
        restored = pickle.loads(pickle.dumps(bound))
        planner_a = Planner(database, plan_cache=PlanCache())
        planner_b = Planner(database, plan_cache=PlanCache())
        assert pickle.dumps(planner_a.plan(bound)) == pickle.dumps(planner_b.plan(restored))


# ---------------------------------------------------------------------------
# Random-generator sampler validation (satellite)
# ---------------------------------------------------------------------------


class TestSamplerConfigValidation:
    def test_join_fractions_must_be_probabilities(self):
        with pytest.raises(WorkloadError, match="outer_fraction"):
            JoinSamplerConfig(outer_fraction=1.7)
        with pytest.raises(WorkloadError, match="outer_fraction"):
            JoinSamplerConfig(outer_fraction=-0.1)
        with pytest.raises(WorkloadError, match="full_fraction"):
            JoinSamplerConfig(full_fraction=2.0)
        # Boundaries are inclusive: always/never are legitimate distributions.
        JoinSamplerConfig(outer_fraction=0.0, full_fraction=1.0)

    def test_predicate_config_rejects_bad_values(self):
        with pytest.raises(WorkloadError, match="max_filters"):
            PredicateSamplerConfig(max_filters=-1)
        with pytest.raises(WorkloadError, match="null_fraction"):
            PredicateSamplerConfig(null_fraction=1.5)
        with pytest.raises(WorkloadError, match="comparison_ops"):
            PredicateSamplerConfig(comparison_ops=())
        with pytest.raises(WorkloadError, match="literal_range"):
            PredicateSamplerConfig(literal_range=(10, 3))
        PredicateSamplerConfig(max_filters=0, comparison_ops=())  # no filters: ops unused

    def test_aggregate_config_rejects_bad_values(self):
        with pytest.raises(WorkloadError, match="group_by_fraction"):
            AggregateSamplerConfig(group_by_fraction=-0.5)
        with pytest.raises(WorkloadError, match="max_aggregates"):
            AggregateSamplerConfig(max_aggregates=-2)
        with pytest.raises(WorkloadError, match="functions"):
            AggregateSamplerConfig(functions=())
        AggregateSamplerConfig(max_aggregates=0, functions=())  # no aggregates: fns unused

    def test_valid_configs_still_generate(self, database):
        generator = RandomSqlGenerator(
            database.schema,
            seed=7,
            joins=JoinSamplerConfig(outer_fraction=0.0, full_fraction=0.0),
            predicates=PredicateSamplerConfig(max_filters=1),
            aggregates=AggregateSamplerConfig(group_by_fraction=1.0),
        )
        sql = generator.sql(0)
        assert sql.startswith("SELECT")
        assert bind_sql(sql, database.schema) is not None
