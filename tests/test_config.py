"""Tests for the configuration knobs and the Table 2 presets."""

import pytest

from repro.config import (
    BALSA_LEON_CONFIG,
    BAO_CONFIG,
    CONFIG_PRESETS,
    DEFAULT_CONFIG,
    GB,
    JOB_LEIS_CONFIG,
    LERO_CONFIG,
    LOGER_CONFIG,
    MB,
    OUR_FRAMEWORK_CONFIG,
    PAGE_SIZE_BYTES,
    PostgresConfig,
    RuntimeConfig,
    format_bytes,
    get_preset,
    iter_presets,
)


class TestDefaults:
    def test_default_matches_postgres_stock_values(self):
        assert DEFAULT_CONFIG.work_mem == 4 * MB
        assert DEFAULT_CONFIG.shared_buffers == 128 * MB
        assert DEFAULT_CONFIG.effective_cache_size == 4 * GB
        assert DEFAULT_CONFIG.geqo is True
        assert DEFAULT_CONFIG.geqo_threshold == 12

    def test_default_has_no_deviations(self):
        assert DEFAULT_CONFIG.diff_from_default() == {}

    def test_page_geometry(self):
        assert DEFAULT_CONFIG.shared_buffer_pages == (128 * MB) // PAGE_SIZE_BYTES
        assert DEFAULT_CONFIG.effective_cache_pages > DEFAULT_CONFIG.shared_buffer_pages


class TestPresets:
    def test_all_presets_registered(self):
        assert set(CONFIG_PRESETS) == {
            "default", "job_leis", "bao", "balsa_leon", "loger", "lero", "our_framework",
        }

    def test_balsa_leon_disables_bitmap_and_tid_scans(self):
        assert BALSA_LEON_CONFIG.enable_bitmapscan is False
        assert BALSA_LEON_CONFIG.enable_tidscan is False
        assert BALSA_LEON_CONFIG.geqo is False

    def test_our_framework_reenables_scans_and_raises_cache(self):
        assert OUR_FRAMEWORK_CONFIG.enable_bitmapscan is True
        assert OUR_FRAMEWORK_CONFIG.enable_tidscan is True
        assert OUR_FRAMEWORK_CONFIG.effective_cache_size == 32 * GB
        assert OUR_FRAMEWORK_CONFIG.autovacuum is False

    def test_parallelization_differences(self):
        assert LOGER_CONFIG.max_parallel_workers == 1
        assert LERO_CONFIG.max_parallel_workers == 0
        assert BALSA_LEON_CONFIG.max_worker_processes == 8

    def test_memory_settings_match_table2(self):
        assert JOB_LEIS_CONFIG.work_mem == 2 * GB
        assert BAO_CONFIG.shared_buffers == 4 * GB
        assert BALSA_LEON_CONFIG.shared_buffers == 32 * GB
        assert LOGER_CONFIG.shared_buffers == 64 * GB

    def test_get_preset_roundtrip(self):
        for name, config in iter_presets():
            assert get_preset(name) is config

    def test_get_preset_unknown_raises(self):
        with pytest.raises(KeyError):
            get_preset("mysql")


class TestBehaviour:
    def test_with_overrides_returns_new_object(self):
        tweaked = DEFAULT_CONFIG.with_overrides(work_mem=1 * GB)
        assert tweaked.work_mem == 1 * GB
        assert DEFAULT_CONFIG.work_mem == 4 * MB

    def test_geqo_enabled_threshold(self):
        assert DEFAULT_CONFIG.geqo_enabled_for(12) is True
        assert DEFAULT_CONFIG.geqo_enabled_for(11) is False
        disabled = DEFAULT_CONFIG.with_overrides(geqo=False)
        assert disabled.geqo_enabled_for(20) is False

    def test_to_dict_contains_every_knob(self):
        knobs = DEFAULT_CONFIG.to_dict()
        assert "enable_bitmapscan" in knobs
        assert "random_page_cost" in knobs
        assert knobs["geqo_threshold"] == 12

    def test_diff_from_default_reports_pairs(self):
        diff = BALSA_LEON_CONFIG.diff_from_default()
        assert diff["enable_bitmapscan"] == (True, False)
        assert "work_mem" in diff


class TestFormatBytes:
    @pytest.mark.parametrize(
        "value, expected",
        [(4 * GB, "4 GB"), (128 * MB, "128 MB"), (8 * 1024, "8 KB"), (100, "100 B")],
    )
    def test_format(self, value, expected):
        assert format_bytes(value) == expected

    def test_work_mem_tuples_positive(self):
        assert PostgresConfig().work_mem_tuples > 0


class TestFingerprints:
    def test_equal_configs_equal_fingerprints(self):
        assert PostgresConfig().fingerprint() == PostgresConfig().fingerprint()
        rebuilt = DEFAULT_CONFIG.with_overrides()
        assert rebuilt.fingerprint() == DEFAULT_CONFIG.fingerprint()

    def test_every_preset_fingerprint_distinct(self):
        fingerprints = {config.fingerprint() for _, config in iter_presets()}
        assert len(fingerprints) == len(CONFIG_PRESETS)

    def test_single_knob_mutation_changes_fingerprint(self):
        base = DEFAULT_CONFIG
        mutated = base.with_overrides(geqo_threshold=base.geqo_threshold + 1)
        assert mutated.fingerprint() != base.fingerprint()
        # Reverting the knob restores the original fingerprint exactly.
        restored = mutated.with_overrides(geqo_threshold=base.geqo_threshold)
        assert restored.fingerprint() == base.fingerprint()

    def test_configs_are_hashable_value_objects(self):
        assert hash(PostgresConfig()) == hash(PostgresConfig())
        assert PostgresConfig() in {DEFAULT_CONFIG}


class TestRuntimeConfigDefaults:
    def test_defaults(self):
        config = RuntimeConfig()
        assert config.workers == 1
        assert config.executor_kind == "thread"
        assert config.plan_cache_entries > 0
        assert config.store_dir is None and config.skip_existing is True

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError):
            RuntimeConfig(executor_kind="gpu")

    def test_task_retries_defaults_to_one_and_rejects_negative(self):
        assert RuntimeConfig().task_retries == 1
        assert RuntimeConfig(task_retries=0).task_retries == 0
        with pytest.raises(ValueError):
            RuntimeConfig(task_retries=-1)

    def test_queue_url_accepts_file_and_tcp_schemes(self):
        assert RuntimeConfig().queue_url is None
        assert RuntimeConfig(queue_url="tcp://127.0.0.1:0").queue_url == "tcp://127.0.0.1:0"
        assert RuntimeConfig(queue_url="file:///shared/q").queue_url == "file:///shared/q"
        assert RuntimeConfig(queue_url="/shared/q").queue_url == "/shared/q"  # bare path = file

    def test_queue_url_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            RuntimeConfig(queue_url="http://coordinator:80")

    def test_queue_url_malformed_tcp_rejected_at_construction(self):
        # Full parse at construction time: a port-less tcp url must not get as
        # far as run_grid before failing.
        with pytest.raises(ValueError):
            RuntimeConfig(queue_url="tcp://coordinator")
