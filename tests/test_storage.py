"""Tests for columnar storage, ordered indexes, the buffer pool and Database."""

import numpy as np
import pytest

from repro.catalog.schema import Column, ColumnType, Table
from repro.catalog.statistics import NULL_SENTINEL
from repro.errors import StorageError
from repro.storage.buffer_pool import BufferPool
from repro.storage.index import OrderedIndex
from repro.storage.table_data import TableData, build_table_data


def _toy_table() -> Table:
    return Table("toy", [Column("id"), Column("label", ColumnType.TEXT), Column("x")])


class TestTableData:
    def test_rejects_inconsistent_lengths(self):
        with pytest.raises(StorageError):
            TableData(_toy_table(), {"id": np.arange(3), "x": np.arange(4)})

    def test_rejects_unknown_column(self):
        with pytest.raises(StorageError):
            TableData(_toy_table(), {"bogus": np.arange(3)})

    def test_encode_decode_text(self):
        data = build_table_data(
            _toy_table(),
            {"id": [1, 2, 3], "label": [0, 1, 0], "x": [10, 20, 30]},
            {"label": ["red", "blue"]},
        )
        assert data.decode("label", 1) == "blue"
        assert data.encode("label", "red") == 0
        assert data.encode("label", "missing") == -1
        assert data.encode("label", None) == NULL_SENTINEL
        assert data.decode("x", 20) == 20

    def test_codes_matching_pattern(self):
        data = build_table_data(
            _toy_table(),
            {"id": [1], "label": [0], "x": [0]},
            {"label": ["Dark Knight", "Knight Rider", "Sunrise"]},
        )
        assert set(data.codes_matching_pattern("label", "%Knight%").tolist()) == {0, 1}
        assert data.codes_matching_pattern("label", "Dark%").tolist() == [0]
        assert data.codes_matching_pattern("label", "%Rider").tolist() == [1]

    def test_select_and_sample_rows(self):
        data = build_table_data(
            _toy_table(), {"id": list(range(100)), "label": [0] * 100, "x": list(range(100))},
            {"label": ["a"]},
        )
        subset = data.select_rows(np.array([1, 5, 9]))
        assert subset.row_count == 3
        assert subset.column("x").tolist() == [1, 5, 9]
        sampled = data.sample_rows(0.5, seed=3)
        assert 20 < sampled.row_count < 80
        with pytest.raises(StorageError):
            data.sample_rows(0.0)

    def test_page_count_grows_with_rows(self):
        small = build_table_data(_toy_table(), {"id": [1], "label": [0], "x": [1]})
        big = build_table_data(
            _toy_table(),
            {"id": list(range(5000)), "label": [0] * 5000, "x": [1] * 5000},
        )
        assert big.page_count > small.page_count


class TestOrderedIndex:
    def test_lookup_eq_with_duplicates(self):
        index = OrderedIndex("t", "x", np.array([5, 3, 5, 1, 5], dtype=np.int64))
        result = index.lookup_eq(5)
        assert sorted(result.row_ids.tolist()) == [0, 2, 4]
        assert result.index_pages >= 1

    def test_lookup_range_bounds(self):
        index = OrderedIndex("t", "x", np.arange(100, dtype=np.int64))
        rows = index.lookup_range(low=10, high=19).row_ids
        assert sorted(rows.tolist()) == list(range(10, 20))
        rows_open = index.lookup_range(low=95, high=None).row_ids
        assert sorted(rows_open.tolist()) == list(range(95, 100))
        with pytest.raises(StorageError):
            index.lookup_range()

    def test_lookup_in(self):
        index = OrderedIndex("t", "x", np.array([1, 2, 2, 3], dtype=np.int64))
        result = index.lookup_in(np.array([2, 3, 99]))
        assert sorted(result.row_ids.tolist()) == [1, 2, 3]

    def test_probe_many_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 50, 300).astype(np.int64)
        index = OrderedIndex("t", "x", values)
        keys = rng.integers(0, 60, 40).astype(np.int64)
        probe_pos, matched, _pages = index.probe_many(keys)
        expected = [(i, j) for i, key in enumerate(keys) for j in range(300) if values[j] == key]
        got = sorted(zip(probe_pos.tolist(), matched.tolist()))
        assert got == sorted(expected)

    def test_sorted_row_ids_order_values(self):
        values = np.array([9, 1, 5], dtype=np.int64)
        index = OrderedIndex("t", "x", values)
        assert values[index.sorted_row_ids()].tolist() == [1, 5, 9]


class TestBufferPool:
    def test_miss_then_hit(self):
        pool = BufferPool(capacity_pages=10)
        first = pool.access_pages("t", 5)
        second = pool.access_pages("t", 5)
        assert first.misses == 5 and first.hits == 0
        assert second.hits == 5 and second.misses == 0
        assert pool.stats.hit_ratio == pytest.approx(0.5)

    def test_lru_eviction(self):
        pool = BufferPool(capacity_pages=4)
        pool.access_pages("a", 4)
        pool.access_pages("b", 2)  # evicts the two oldest pages of "a"
        assert pool.resident_pages == 4
        assert pool.resident_pages_of("a") == 2
        assert pool.stats.evictions == 2

    def test_invalidate_specific_relation(self):
        pool = BufferPool(capacity_pages=10)
        pool.access_pages("a", 3)
        pool.access_pages("b", 3)
        pool.invalidate("a")
        assert pool.resident_pages_of("a") == 0
        assert pool.resident_pages_of("b") == 3
        pool.invalidate()
        assert pool.resident_pages == 0

    def test_warm_does_not_count_stats(self):
        pool = BufferPool(capacity_pages=10)
        pool.warm("t", 5)
        assert pool.stats.accesses == 0
        assert pool.access_pages("t", 5).hits == 5

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BufferPool(0)


class TestDatabase:
    def test_indexes_built_for_fk_columns(self, imdb_db):
        assert imdb_db.has_index("movie_keyword", "movie_id")
        assert imdb_db.has_index("title", "id")
        assert imdb_db.index("title", "title") is None

    def test_statistics_available_for_all_tables(self, imdb_db):
        for name in imdb_db.table_names():
            assert imdb_db.statistics(name).row_count == imdb_db.table_data(name).row_count

    def test_with_config_shares_data_but_not_buffer_pool(self, imdb_db):
        from repro.config import DEFAULT_CONFIG

        clone = imdb_db.with_config(DEFAULT_CONFIG.with_overrides(shared_buffers=8 * 1024 * 1024))
        assert clone.table_data("title") is imdb_db.table_data("title")
        assert clone.buffer_pool is not imdb_db.buffer_pool

    def test_sample_copy_cascades(self, imdb_db):
        half = imdb_db.sample_copy({"title": 0.5}, seed=1)
        full_titles = imdb_db.table_data("title").row_count
        half_titles = half.table_data("title").row_count
        assert 0.35 * full_titles < half_titles < 0.65 * full_titles
        # cascade: movie_keyword rows must reference surviving titles only
        kept = half.table_data("title").column("id")
        mk = half.table_data("movie_keyword").column("movie_id")
        assert np.isin(mk, kept).all()
        # dimension tables untouched
        assert half.table_data("keyword").row_count == imdb_db.table_data("keyword").row_count

    def test_drop_caches_empties_pool(self, imdb_db):
        imdb_db.warm_table("title")
        assert imdb_db.buffer_pool.resident_pages > 0
        imdb_db.drop_caches()
        assert imdb_db.buffer_pool.resident_pages == 0
