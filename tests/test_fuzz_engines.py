"""Cross-engine differential fuzzing with the seeded RandomSqlGenerator.

Every generated query — outer joins, GROUP BY, NULL-heavy filters — runs
through three independent evaluators:

* the **row** engine (the correctness oracle of the engine pair),
* the **columnar** engine (byte-identical results, metrics and timings), and
* a **brute-force Python oracle** in this file: per-alias filtered row lists,
  an exhaustive nested-loop inner core, then the outer-join edges folded in
  syntax order with SQL NULL semantics (NULL never matches; unmatched tuples
  NULL-extend), finishing with the same aggregate/GROUP BY decoration rules
  the engines implement.

The row/columnar comparison is exact (row order, metrics, simulated time);
the oracle comparison is order-insensitive (the oracle enumerates in its own
order).  ``parse(render_sql(q)) == q`` is additionally checked for every
generated query, pinning the SQL layer's round-trip property.

Knobs (all environment variables):

* ``REPRO_FUZZ_COUNT`` — queries per suite run (default 40 so the tier-1 run
  stays fast; ``make fuzz-engines`` raises it to 1000).
* ``REPRO_FUZZ_SEED`` — generator seed (default 2024).
* ``REPRO_FUZZ_CORPUS`` — directory to write one JSON file per failing query
  into; CI uploads it as the failure artifact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.statistics import NULL_SENTINEL
from repro.executor.engine import create_engine
from repro.optimizer.planner import Planner
from repro.sql.ast import render_sql
from repro.sql.binder import bind_query
from repro.sql.parser import parse_select
from repro.workloads import JoinSamplerConfig, PredicateSamplerConfig, RandomSqlGenerator
from tests.test_executor import _oracle_filter_ok, _tiny_database

FUZZ_COUNT = int(os.environ.get("REPRO_FUZZ_COUNT", "40"))
FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "2024"))
CORPUS_DIR = os.environ.get("REPRO_FUZZ_CORPUS", "")


def make_generator(schema) -> RandomSqlGenerator:
    """The fuzz distribution: join-heavy and NULL-heavy."""
    return RandomSqlGenerator(
        schema,
        seed=FUZZ_SEED,
        joins=JoinSamplerConfig(min_joins=0, max_joins=4, outer_fraction=0.45, full_fraction=0.3),
        predicates=PredicateSamplerConfig(max_filters=2, null_fraction=0.4),
    )


# ---------------------------------------------------------------------------
# Brute-force oracle
# ---------------------------------------------------------------------------

def _code(db, query, alias: str, column: str, row: int | None) -> int:
    """Stored code of ``alias.column`` in ``row``; NULL-extended rows are NULL."""
    if row is None:
        return NULL_SENTINEL
    return int(db.table_data(query.table_of(alias)).column(column)[row])


def _filtered_rows(db, query, alias: str) -> list[int]:
    data = db.table_data(query.table_of(alias))
    predicates = query.filters_for(alias)
    return [
        row
        for row in range(data.row_count)
        if all(_oracle_filter_ok(data, p, row) for p in predicates)
    ]


def _join_matches(db, query, assignment: dict, row: int, predicates) -> bool:
    """Whether ``row`` of the edge's nullable alias joins ``assignment``."""
    for predicate in predicates:
        left = _code(db, query, predicate.left_alias, predicate.left_column,
                     assignment[predicate.left_alias])
        right = _code(db, query, predicate.right_alias, predicate.right_column, row)
        if left == NULL_SENTINEL or right == NULL_SENTINEL or left != right:
            return False
    return True


def oracle_assignments(db, query) -> list[dict]:
    """All result tuples as alias -> row-or-None mappings.

    The inner core is an exhaustive filtered nested loop; the outer edges
    then fold in syntax order, NULL-extending unmatched tuples (and, for
    FULL joins, unmatched rows of the nullable side).
    """
    filtered = {alias: _filtered_rows(db, query, alias) for alias in query.aliases}

    # Inner core, folded one alias at a time in FROM order.  The binder
    # normalizes every inner-join predicate so its right alias is the later
    # introduced one, which lets each step check exactly the predicates that
    # become bound — a pruned nested loop instead of a full cross product.
    introduced: list[str] = []
    assignments: list[dict] = [{}]
    for alias in query.core_aliases:
        arriving = [j for j in query.inner_joins if j.right_alias == alias]
        assignments = [
            {**assignment, alias: row}
            for assignment in assignments
            for row in filtered[alias]
            if all(_join_matches(db, query, assignment, row, [j]) for j in arriving)
        ]
        introduced.append(alias)

    for edge in query.outer_edges:
        folded: list[dict] = []
        matched_right: set[int] = set()
        for assignment in assignments:
            matches = [
                row
                for row in filtered[edge.nullable_alias]
                if _join_matches(db, query, assignment, row, edge.predicates)
            ]
            if matches:
                matched_right.update(matches)
                folded.extend({**assignment, edge.nullable_alias: row} for row in matches)
            else:
                folded.append({**assignment, edge.nullable_alias: None})
        if edge.join_type == "full":
            folded.extend(
                {**{alias: None for alias in introduced}, edge.nullable_alias: row}
                for row in filtered[edge.nullable_alias]
                if row not in matched_right
            )
        introduced.append(edge.nullable_alias)
        assignments = folded
    return assignments


def _oracle_aggregate(db, query, assignments: list[dict], item) -> object:
    """One aggregate select-item, mirroring the engines' NULL rules."""
    if item.column is None:
        return len(assignments)
    alias = item.column.alias or query.aliases[0]
    codes = [
        code
        for assignment in assignments
        if (code := _code(db, query, alias, item.column.column, assignment[alias]))
        != NULL_SENTINEL
    ]
    if not codes:
        # The engines return NULL here even for COUNT(column): an all-NULL
        # column aggregates to None in this dialect (see _scalar_aggregate).
        return None
    data = db.table_data(query.table_of(alias))
    if item.function == "count":
        return len(codes)
    if item.function == "sum":
        return sum(codes)
    if item.function == "avg":
        return float(sum(codes) / len(codes))
    if item.function == "min":
        return data.decode(item.column.column, min(codes))
    if item.function == "max":
        return data.decode(item.column.column, max(codes))
    raise AssertionError(f"oracle does not implement {item.function!r}")


def oracle_rows(db, query) -> list[tuple]:
    """Final output rows of the brute-force oracle (engine decoration rules)."""
    statement = query.statement
    assignments = oracle_assignments(db, query)
    if not statement.group_by:
        return [
            tuple(
                _oracle_aggregate(db, query, assignments, item)
                for item in statement.select_items
            )
        ]
    if not assignments:
        return []
    groups: dict[tuple, list[dict]] = {}
    for assignment in assignments:
        key = tuple(
            _code(db, query, col.alias or query.aliases[0], col.column,
                  assignment[col.alias or query.aliases[0]])
            for col in statement.group_by
        )
        groups.setdefault(key, []).append(assignment)
    rows = []
    for key in sorted(groups):
        decoded = tuple(
            db.table_data(query.table_of(col.alias or query.aliases[0])).decode(
                col.column, code
            )
            for col, code in zip(statement.group_by, key)
        )
        aggregates = tuple(
            _oracle_aggregate(db, query, groups[key], item)
            for item in statement.select_items
            if item.function
        )
        rows.append(decoded + aggregates)
    return rows


# ---------------------------------------------------------------------------
# The fuzz loop
# ---------------------------------------------------------------------------

def _record_failure(corpus: Path | None, index: int, sql: str, reason: str) -> None:
    if corpus is None:
        return
    corpus.mkdir(parents=True, exist_ok=True)
    payload = {"index": index, "seed": FUZZ_SEED, "sql": sql, "reason": reason}
    (corpus / f"query_{index}.json").write_text(
        json.dumps(payload, indent=2), encoding="utf-8"
    )


def _check_one(index: int, sql: str) -> None:
    """Run one generated query through all three evaluators."""
    statement = parse_select(sql)
    assert parse_select(render_sql(statement)) == statement, "SQL round-trip drifted"

    db_row, db_col = _tiny_database(), _tiny_database()
    q_row = bind_query(parse_select(sql), db_row.schema, name=f"fuzz_{index}_r")
    q_col = bind_query(parse_select(sql), db_col.schema, name=f"fuzz_{index}_c")
    plan_row = Planner(db_row).plan(q_row)
    plan_col = Planner(db_col).plan(q_col)
    result_row = create_engine(db_row, kind="row").execute(q_row, plan_row)
    result_col = create_engine(db_col, kind="columnar").execute(q_col, plan_col)

    assert result_row.rows == result_col.rows, "row/columnar rows diverge"
    assert result_row.row_count == result_col.row_count
    assert result_row.timed_out == result_col.timed_out
    assert result_row.error == result_col.error
    assert result_row.metrics.__dict__ == result_col.metrics.__dict__, (
        "row/columnar metrics diverge"
    )
    assert result_row.execution_time_ms == result_col.execution_time_ms
    row_nodes = [
        result_row.node_actual_rows[id(n)]
        for n in plan_row.walk()
        if id(n) in result_row.node_actual_rows
    ]
    col_nodes = [
        result_col.node_actual_rows[id(n)]
        for n in plan_col.walk()
        if id(n) in result_col.node_actual_rows
    ]
    assert row_nodes == col_nodes, "row/columnar per-node cardinalities diverge"

    expected = oracle_rows(db_row, q_row)
    assert sorted(result_row.rows, key=repr) == sorted(expected, key=repr), (
        "engine disagrees with brute-force oracle"
    )


class TestDifferentialFuzz:
    def test_seeded_queries_agree_across_engines_and_oracle(self):
        db = _tiny_database()
        generator = make_generator(db.schema)
        corpus = Path(CORPUS_DIR) if CORPUS_DIR else None
        failures = []
        outer_seen = 0
        for index in range(FUZZ_COUNT):
            sql = generator.sql(index)
            if "JOIN" in sql and ("LEFT" in sql or "FULL" in sql):
                outer_seen += 1
            try:
                _check_one(index, sql)
            except AssertionError as exc:
                failures.append((index, sql, str(exc)))
                _record_failure(corpus, index, sql, str(exc))
        assert not failures, (
            f"{len(failures)}/{FUZZ_COUNT} queries diverged; first: "
            f"{failures[0][1]!r}: {failures[0][2]}"
        )
        # The distribution must actually exercise the outer-join paths.
        assert outer_seen >= FUZZ_COUNT // 5


class TestRoundTripProperty:
    @settings(max_examples=200, deadline=None)
    @given(index=st.integers(min_value=0, max_value=1_000_000))
    def test_parse_render_parse_is_identity(self, index):
        schema = _tiny_database().schema
        generator = make_generator(schema)
        statement = parse_select(generator.sql(index))
        assert parse_select(render_sql(statement)) == statement


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
