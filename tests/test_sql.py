"""Tests for the SQL lexer, parser and binder."""

import pytest

from repro.errors import BindingError, SQLSyntaxError
from repro.sql.ast import BetweenFilter, ComparisonFilter, InFilter, LikeFilter, NullFilter
from repro.sql.binder import bind_query, bind_sql
from repro.sql.lexer import TokenType, tokenize
from repro.sql.parser import parse_select


class TestLexer:
    def test_tokenizes_keywords_and_identifiers(self):
        tokens = tokenize("SELECT COUNT(*) FROM title AS t")
        kinds = [t.ttype for t in tokens]
        assert kinds[0] is TokenType.KEYWORD
        assert TokenType.STAR in kinds
        assert kinds[-1] is TokenType.EOF

    def test_string_literal_with_escaped_quote(self):
        tokens = tokenize("x = 'it''s'")
        strings = [t for t in tokens if t.ttype is TokenType.STRING]
        assert strings[0].value == "it's"

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("x = 'oops")

    def test_negative_number_after_operator(self):
        tokens = tokenize("x > -5")
        numbers = [t for t in tokens if t.ttype is TokenType.NUMBER]
        assert numbers[0].value == "-5"

    def test_comments_are_skipped(self):
        tokens = tokenize("SELECT * -- a comment\nFROM t")
        assert not any(t.value == "comment" for t in tokens)

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @ FROM t")


class TestParser:
    def test_parses_job_style_query(self):
        sql = """
            SELECT MIN(t.title) AS movie_title, COUNT(*)
            FROM title AS t, movie_keyword AS mk, keyword AS k
            WHERE t.id = mk.movie_id AND mk.keyword_id = k.id
              AND k.keyword = 'sequel' AND t.production_year > 2000;
        """
        stmt = parse_select(sql)
        assert [t.alias for t in stmt.from_tables] == ["t", "mk", "k"]
        assert len(stmt.joins) == 2
        assert len(stmt.filters) == 2
        assert stmt.select_items[0].function == "min"
        assert stmt.select_items[1].column is None  # COUNT(*)

    def test_parses_in_between_like_null(self):
        sql = (
            "SELECT COUNT(*) FROM title AS t WHERE t.kind_id IN (1, 2, 3) "
            "AND t.production_year BETWEEN 1990 AND 2000 "
            "AND t.title LIKE '%Dark%' AND t.episode_nr IS NOT NULL "
            "AND t.title NOT LIKE '%Test%'"
        )
        stmt = parse_select(sql)
        kinds = [type(f) for f in stmt.filters]
        assert kinds == [InFilter, BetweenFilter, LikeFilter, NullFilter, LikeFilter]
        assert stmt.filters[3].negated is True
        assert stmt.filters[4].negated is True

    def test_parses_group_by_order_by_limit(self):
        sql = (
            "SELECT kt.kind, COUNT(*) FROM kind_type AS kt, title AS t "
            "WHERE t.kind_id = kt.id GROUP BY kt.kind ORDER BY kt.kind DESC LIMIT 10"
        )
        stmt = parse_select(sql)
        assert len(stmt.group_by) == 1
        assert stmt.order_by[0].descending is True
        assert stmt.limit == 10

    def test_alias_without_as_keyword(self):
        stmt = parse_select("SELECT COUNT(*) FROM title t WHERE t.production_year > 2000")
        assert stmt.from_tables[0].alias == "t"

    def test_comparison_operators_normalized(self):
        stmt = parse_select("SELECT COUNT(*) FROM title AS t WHERE t.kind_id <> 3")
        assert isinstance(stmt.filters[0], ComparisonFilter)
        assert stmt.filters[0].op == "!="

    def test_trailing_garbage_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT COUNT(*) FROM t WHERE t.x = 1 GARBAGE")

    def test_missing_from_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT COUNT(*) WHERE x = 1")

    def test_to_sql_round_trips(self):
        sql = (
            "SELECT MIN(t.id) AS m, COUNT(*) FROM title AS t, kind_type AS kt "
            "WHERE t.kind_id = kt.id AND kt.kind = 'movie' AND t.production_year > 1990"
        )
        stmt = parse_select(sql)
        reparsed = parse_select(stmt.to_sql())
        assert len(reparsed.joins) == len(stmt.joins)
        assert len(reparsed.filters) == len(stmt.filters)
        assert [t.alias for t in reparsed.from_tables] == [t.alias for t in stmt.from_tables]


class TestBinder:
    def test_bind_resolves_aliases_and_filters(self, schema_only):
        query = bind_sql(
            "SELECT COUNT(*) FROM title AS t, movie_keyword AS mk, keyword AS k "
            "WHERE t.id = mk.movie_id AND mk.keyword_id = k.id AND k.keyword = 'sequel'",
            schema_only,
            name="q",
        )
        assert query.num_relations == 3
        assert query.num_joins == 2
        assert query.table_of("mk") == "movie_keyword"
        assert query.filters_for("k")[0].op == "="

    def test_bind_unknown_table(self, schema_only):
        with pytest.raises(BindingError):
            bind_sql("SELECT COUNT(*) FROM nonexistent AS n", schema_only)

    def test_bind_unknown_column(self, schema_only):
        with pytest.raises(BindingError):
            bind_sql("SELECT COUNT(*) FROM title AS t WHERE t.bogus = 1", schema_only)

    def test_bind_duplicate_alias(self, schema_only):
        with pytest.raises(BindingError):
            bind_sql("SELECT COUNT(*) FROM title AS t, keyword AS t", schema_only)

    def test_unqualified_column_resolution(self, schema_only):
        query = bind_sql(
            "SELECT COUNT(*) FROM title AS t, keyword AS k WHERE production_year > 2000 "
            "AND t.id = k.id",
            schema_only,
        )
        assert query.filters[0].alias == "t"

    def test_ambiguous_unqualified_column_raises(self, schema_only):
        with pytest.raises(BindingError):
            bind_sql(
                "SELECT COUNT(*) FROM title AS t, aka_title AS at2 WHERE title = 'x' "
                "AND t.id = at2.movie_id",
                schema_only,
            )

    def test_join_graph_and_adjacency(self, schema_only):
        query = bind_sql(
            "SELECT COUNT(*) FROM title AS t, movie_keyword AS mk, keyword AS k "
            "WHERE t.id = mk.movie_id AND mk.keyword_id = k.id",
            schema_only,
        )
        graph = query.join_graph()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2
        assert query.is_connected()
        matrix = query.adjacency_matrix()
        assert matrix[0][1] == 1 and matrix[1][2] == 1 and matrix[0][2] == 0

    def test_disconnected_query_detected(self, schema_only):
        query = bind_sql(
            "SELECT COUNT(*) FROM title AS t, keyword AS k WHERE t.production_year > 2000",
            schema_only,
        )
        assert not query.is_connected()

    def test_joins_between(self, schema_only):
        query = bind_sql(
            "SELECT COUNT(*) FROM title AS t, movie_keyword AS mk, keyword AS k "
            "WHERE t.id = mk.movie_id AND mk.keyword_id = k.id",
            schema_only,
        )
        between = query.joins_between({"t"}, {"mk"})
        assert len(between) == 1
        assert between[0].column_for("mk") == "movie_id"
        assert between[0].other("mk") == ("t", "id")

    def test_same_alias_equality_is_not_a_join(self, schema_only):
        stmt = parse_select("SELECT COUNT(*) FROM title AS t WHERE t.id = t.id")
        query = bind_query(stmt, schema_only)
        assert query.num_joins == 0


class TestOuterJoinParsing:
    SQL = (
        "SELECT COUNT(*) FROM title AS t "
        "LEFT JOIN movie_keyword AS mk ON t.id = mk.movie_id "
        "FULL OUTER JOIN keyword AS k ON mk.keyword_id = k.id"
    )

    def test_join_clauses_carry_type_and_conditions(self):
        stmt = parse_select(self.SQL)
        assert [clause.join_type for clause in stmt.join_clauses] == ["left", "full"]
        assert [clause.table.alias for clause in stmt.join_clauses] == ["mk", "k"]
        # The flat joins list sees every ON condition with its join type.
        assert [j.join_type for j in stmt.joins] == ["left", "full"]

    def test_inner_join_keyword_forms(self):
        plain = parse_select("SELECT COUNT(*) FROM title AS t JOIN movie_keyword AS mk ON t.id = mk.movie_id")
        spelled = parse_select(
            "SELECT COUNT(*) FROM title AS t INNER JOIN movie_keyword AS mk ON t.id = mk.movie_id"
        )
        assert plain == spelled
        assert plain.join_clauses[0].join_type == "inner"

    def test_to_sql_round_trips_and_canonicalizes(self):
        stmt = parse_select(self.SQL)
        rendered = stmt.to_sql()
        # Canonical form drops the optional OUTER keyword.
        assert "LEFT JOIN movie_keyword AS mk" in rendered
        assert "FULL JOIN keyword AS k" in rendered
        assert parse_select(rendered) == stmt

    def test_mixing_comma_and_explicit_joins_is_rejected(self):
        with pytest.raises(SQLSyntaxError, match="cannot mix"):
            parse_select(
                "SELECT COUNT(*) FROM title AS t, movie_keyword AS mk "
                "LEFT JOIN keyword AS k ON mk.keyword_id = k.id"
            )
        with pytest.raises(SQLSyntaxError, match="cannot mix"):
            parse_select(
                "SELECT COUNT(*) FROM title AS t "
                "LEFT JOIN movie_keyword AS mk ON t.id = mk.movie_id, keyword AS k"
            )

    def test_non_equi_on_condition_is_rejected(self):
        with pytest.raises(SQLSyntaxError, match="equi-join"):
            parse_select(
                "SELECT COUNT(*) FROM title AS t LEFT JOIN movie_keyword AS mk ON t.id > mk.movie_id"
            )
        with pytest.raises(SQLSyntaxError, match="column references"):
            parse_select(
                "SELECT COUNT(*) FROM title AS t LEFT JOIN movie_keyword AS mk ON t.id = 5"
            )


class TestOuterJoinBinding:
    SQL = TestOuterJoinParsing.SQL

    def test_outer_edges_and_core_query(self, schema_only):
        query = bind_sql(self.SQL, schema_only)
        assert query.has_outer_joins
        assert [str(edge) for edge in query.outer_edges] == [
            "LEFT JOIN mk ON t.id = mk.movie_id",
            "FULL JOIN k ON mk.keyword_id = k.id",
        ]
        assert query.core_aliases == ["t"]
        core = query.core_query()
        assert core.aliases == ["t"]
        assert core.outer_edges == []
        assert not core.has_outer_joins

    def test_inner_only_query_core_is_self(self, schema_only):
        query = bind_sql(
            "SELECT COUNT(*) FROM title AS t, movie_keyword AS mk WHERE t.id = mk.movie_id",
            schema_only,
        )
        assert query.core_query() is query
        assert query.inner_joins == query.joins

    def test_inner_join_after_outer_on_nullable_alias_rejected(self, schema_only):
        with pytest.raises(BindingError, match="reorder the clauses"):
            bind_sql(
                "SELECT COUNT(*) FROM title AS t "
                "LEFT JOIN movie_keyword AS mk ON t.id = mk.movie_id "
                "JOIN keyword AS k ON mk.keyword_id = k.id",
                schema_only,
            )

    def test_where_join_touching_nullable_alias_rejected(self, schema_only):
        with pytest.raises(BindingError, match="nullable outer-join alias"):
            bind_sql(
                "SELECT COUNT(*) FROM title AS t "
                "LEFT JOIN movie_keyword AS mk ON t.id = mk.movie_id "
                "WHERE mk.movie_id = t.id",
                schema_only,
            )

    def test_on_condition_must_reference_the_joined_table(self, schema_only):
        with pytest.raises(BindingError, match="must reference the joined table"):
            bind_sql(
                "SELECT COUNT(*) FROM title AS t "
                "JOIN movie_keyword AS mk ON t.id = mk.movie_id "
                "JOIN keyword AS k ON t.id = mk.movie_id",
                schema_only,
            )

    def test_scan_filter_on_nullable_alias_is_allowed(self, schema_only):
        query = bind_sql(
            self.SQL + " WHERE mk.keyword_id IS NULL",
            schema_only,
        )
        assert [str(f) for f in query.filters_for("mk")] == ["mk.keyword_id is_null"]
