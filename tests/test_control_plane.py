"""Cross-transport tests of the sweep control plane.

Covers the PR-5 surface on both queue transports (`file://` directory queue
and `tcp://` in-memory server):

* coordinator-side work stealing (hungry-shard signalling + rebalance),
* property tests that claim/steal/ack interleavings never duplicate or drop
  a task (exactly-once visible completion),
* the HMAC frame authentication of the TCP transport, including a fuzz pass
  asserting malformed/truncated/unsigned frames error cleanly and an
  untrusted peer can never reach ``pickle.loads``,
* the bounded retry/backoff of `NetWorkQueue` against transient socket
  errors,
* `QueueStats`/`describe()` edge cases and lease-expiry boundary conditions,
* a 4-worker stress sweep with stealing enabled, byte-identical to serial.
"""

import json
import random
import socket
import struct
import threading
import time
import uuid
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SIMULATION_CONFIG, RuntimeConfig
from repro.core.experiment import ExperimentConfig
from repro.core.splits import DatasetSplit, SplitSampling
from repro.errors import ExperimentError
from repro.experiments.common import distributed_runtime
from repro.runtime import netqueue
from repro.runtime.netqueue import (
    MAGIC_ERROR,
    FrameAuthError,
    NetWorkQueue,
    QueueAuthError,
    QueueServer,
    recv_frame,
    resolve_queue_secret,
    send_frame,
)
from repro.runtime.parallel import ParallelExperimentRunner
from repro.runtime.workqueue import QueueStats, QueueTransport, StolenTask, WorkQueue
from repro.storage.registry import get_process_registry
from repro.storage.spec import DatabaseSpec
from repro.workloads import build_workload

TRANSPORTS = ("file", "tcp")


@pytest.fixture(params=TRANSPORTS)
def sharded_queue(request, tmp_path):
    """One queue per transport with 4 shard partitions and a long lease."""
    if request.param == "file":
        yield WorkQueue(tmp_path / "q", lease_timeout_s=300, shard_count=4)
    else:
        server = QueueServer(lease_timeout_s=300)
        yield server
        server.close()


# ---------------------------------------------------------------------------
# Coordinator-side work stealing
# ---------------------------------------------------------------------------


class TestWorkStealing:
    def test_hungry_shard_is_fed_from_the_fullest_shard(self, sharded_queue):
        queue = sharded_queue
        for index in range(4):
            queue.enqueue(f"t-{index}", f"payload-{index}", shard=0)
        queue.enqueue("t-4", "payload-4", shard=2)

        assert queue.claim("starving", shard=1) is None  # marks shard 1 hungry
        moved = queue.rebalance()
        assert moved and all(isinstance(entry, StolenTask) for entry in moved)
        # Stolen from the fullest shard (0, four tasks), not the lean one.
        assert {entry.from_shard for entry in moved} == {0}
        assert {entry.to_shard for entry in moved} == {1}
        revived = queue.claim("starving", shard=1)
        assert revived is not None and revived.task_id in {entry.task_id for entry in moved}

    def test_rebalance_without_hungry_workers_is_a_noop(self, sharded_queue):
        for index in range(4):
            sharded_queue.enqueue(f"t-{index}", "p", shard=0)
        assert sharded_queue.rebalance() == []
        assert sharded_queue.stats().pending == 4

    def test_rebalance_noop_when_hungry_shard_got_work_meanwhile(self, sharded_queue):
        queue = sharded_queue
        queue.enqueue("other-0", "p", shard=0)
        assert queue.claim("w", shard=1) is None  # hungry...
        queue.enqueue("late-0", "p", shard=1)  # ...but work arrived before the sweep
        assert queue.rebalance() == []  # nothing moved, the mark is consumed
        assert queue.rebalance() == []

    def test_hungry_mark_is_consumed_by_a_successful_steal(self, sharded_queue):
        queue = sharded_queue
        for index in range(4):
            queue.enqueue(f"t-{index}", "p", shard=0)
        assert queue.claim("w", shard=1) is None
        assert queue.rebalance()
        # The same mark must not keep attracting work on every later sweep.
        assert queue.rebalance() == []

    def test_nothing_to_steal_keeps_waiting_without_error(self, sharded_queue):
        assert sharded_queue.claim("w", shard=3) is None
        assert sharded_queue.rebalance() == []

    def test_stale_hungry_marker_is_ignored(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", shard_count=4, hungry_ttl_s=0.05)
        queue.enqueue("t-0", "p", shard=0)
        assert queue.claim("w", shard=1) is None
        time.sleep(0.1)  # the starving worker has long moved on (or died)
        assert queue.rebalance() == []
        assert queue.stats().shard_pending == ((0, 1),)

    def test_stale_hungry_mark_is_ignored_on_server(self, monkeypatch):
        server = QueueServer(lease_timeout_s=300, hungry_ttl_s=10.0)
        try:
            server.enqueue("t-0", "p", shard=0)
            assert server.claim("w", shard=1) is None
            real = time.monotonic
            monkeypatch.setattr(netqueue.time, "monotonic", lambda: real() + 60.0)
            assert server.rebalance() == []
        finally:
            monkeypatch.undo()
            server.close()

    def test_expired_lease_requeues_into_shared_pool_claimable_by_any_shard(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_timeout_s=0.05, shard_count=4)
        queue.enqueue("t-0", "payload", shard=0)
        assert queue.claim("doomed", shard=0) is not None
        time.sleep(0.1)
        assert queue.requeue_expired() == ["t-0"]
        # Shard 3's worker finds it through the root-pool fallback: the
        # original shard's worker may be the dead one.
        revived = queue.claim("survivor", shard=3)
        assert revived is not None and revived.payload == "payload"

    def test_stolen_task_acks_exactly_once(self, sharded_queue):
        queue = sharded_queue
        for index in range(3):
            queue.enqueue(f"t-{index}", "p", shard=0)
        assert queue.claim("w1", shard=1) is None
        queue.rebalance()
        seen = []
        for worker, shard in (("w0", 0), ("w1", 1), ("w0", 0), ("w1", 1)):
            claim = queue.claim(worker, shard=shard)
            if claim is not None:
                seen.append(claim.task_id)
                queue.ack(claim, worker)
        assert sorted(seen) == ["t-0", "t-1", "t-2"]  # nothing lost, nothing doubled
        assert queue.done_ids() == {"t-0", "t-1", "t-2"}
        assert queue.stats().pending == 0

    def test_unsharded_worker_scans_every_partition(self, sharded_queue):
        queue = sharded_queue
        queue.enqueue("a-0", "root", shard=None)
        queue.enqueue("b-0", "sharded", shard=2)
        got = {queue.claim("w").task_id, queue.claim("w").task_id}
        assert got == {"a-0", "b-0"}
        assert queue.claim("w") is None

    def test_negative_shard_rejected(self, sharded_queue):
        with pytest.raises(ExperimentError):
            sharded_queue.enqueue("t-0", "p", shard=-1)
        # claim must fail fast too: a hungry mark on a phantom partition would
        # attract stolen tasks no correctly-pinned worker can ever see.
        with pytest.raises(ExperimentError):
            sharded_queue.claim("typo-worker", shard=-1)
        assert sharded_queue.rebalance() == []

    def test_negative_shard_rejected_over_the_wire(self):
        server = QueueServer(lease_timeout_s=300)
        try:
            client = NetWorkQueue(server.url, retries=0)
            with pytest.raises(ExperimentError, match="shard must be >= 0"):
                client.claim("typo-worker", shard=-1)
        finally:
            server.close()


# ---------------------------------------------------------------------------
# Property: claim/steal/ack interleavings are exactly-once
# ---------------------------------------------------------------------------


def _drain_all(queue, held, acked):
    """Ack everything held, then claim+ack until the queue is empty."""
    for task_id, claim in sorted(held.items()):
        queue.ack(claim, "drain")
        acked.append(task_id)
    held.clear()
    while True:
        claim = queue.claim("drain")
        if claim is None:
            return
        queue.ack(claim, "drain")
        acked.append(claim.task_id)


@st.composite
def interleavings(draw):
    n_tasks = draw(st.integers(min_value=3, max_value=8))
    shards = draw(
        st.lists(
            st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
            min_size=n_tasks,
            max_size=n_tasks,
        )
    )
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("claim"),
                    st.sampled_from(["w0", "w1", "w2"]),
                    st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
                ),
                st.tuples(st.just("ack"), st.integers(min_value=0, max_value=10 ** 6)),
                st.tuples(st.just("rebalance")),
            ),
            max_size=30,
        )
    )
    return n_tasks, shards, ops


class TestExactlyOnceProperty:
    """Random claim/steal/ack interleavings: every task completes exactly once,
    none is duplicated into two live claims, none is dropped."""

    def _run(self, queue, n_tasks, shards, ops):
        task_ids = [f"t-{index:02d}" for index in range(n_tasks)]
        for task_id, shard in zip(task_ids, shards):
            queue.enqueue(task_id, f"payload-{task_id}", shard=shard)
        held: dict[str, object] = {}
        acked: list[str] = []
        for op in ops:
            if op[0] == "claim":
                claim = queue.claim(op[1], shard=op[2])
                if claim is not None:
                    # A pending task may be claimed by exactly one worker.
                    assert claim.task_id not in held, "task claimed twice concurrently"
                    assert claim.task_id not in acked, "completed task re-claimed"
                    held[claim.task_id] = claim
            elif op[0] == "ack" and held:
                task_id = sorted(held)[op[1] % len(held)]
                queue.ack(held.pop(task_id), "prop")
                acked.append(task_id)
            elif op[0] == "rebalance":
                for entry in queue.rebalance():
                    assert entry.task_id not in held, "steal duplicated a live claim"
                    assert entry.task_id not in acked, "steal resurrected a done task"
        _drain_all(queue, held, acked)
        assert sorted(acked) == task_ids, "a task was dropped or duplicated"
        assert queue.done_ids() == set(task_ids)
        stats = queue.stats()
        assert stats.pending == 0 and stats.claimed == 0 and stats.done == n_tasks

    @settings(max_examples=25, deadline=None)
    @given(scenario=interleavings())
    def test_file_queue(self, tmp_path_factory, scenario):
        n_tasks, shards, ops = scenario
        root = tmp_path_factory.mktemp("prop") / uuid.uuid4().hex
        self._run(WorkQueue(root, lease_timeout_s=300, shard_count=4), n_tasks, shards, ops)

    @settings(max_examples=25, deadline=None)
    @given(scenario=interleavings())
    def test_tcp_server(self, scenario):
        n_tasks, shards, ops = scenario
        server = QueueServer(lease_timeout_s=300)
        try:
            self._run(server, n_tasks, shards, ops)
        finally:
            server.close()

    def test_concurrent_claims_with_rebalance_are_exclusive(self, tmp_path):
        """Threads hammering claims while a rebalance loop steals: every task
        is claimed by exactly one thread."""
        queue = WorkQueue(tmp_path / "q", lease_timeout_s=300, shard_count=4)
        task_ids = [f"t-{index:03d}" for index in range(40)]
        for index, task_id in enumerate(task_ids):
            queue.enqueue(task_id, index, shard=index % 2)  # skew into shards 0/1

        claimed: dict[str, list[str]] = {}
        lock = threading.Lock()
        stop = threading.Event()

        def worker(name: str, shard: int):
            while not stop.is_set():
                claim = queue.claim(name, shard=shard)
                if claim is None:
                    time.sleep(0.001)
                    continue
                with lock:
                    claimed.setdefault(claim.task_id, []).append(name)
                queue.ack(claim, name)

        threads = [
            threading.Thread(target=worker, args=(f"w-{index}", index), daemon=True)
            for index in range(4)
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and len(queue.done_ids()) < len(task_ids):
            queue.rebalance()
            time.sleep(0.002)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert queue.done_ids() == set(task_ids)
        doubles = {task: owners for task, owners in claimed.items() if len(owners) > 1}
        assert not doubles, f"tasks claimed more than once: {doubles}"


# ---------------------------------------------------------------------------
# Frame authentication + codec fuzz
# ---------------------------------------------------------------------------


class _ByteSock:
    """A socket stand-in replaying a fixed byte string (recv-only)."""

    def __init__(self, data: bytes):
        self.data = data
        self.offset = 0
        self.sent = b""

    def recv(self, n_bytes: int) -> bytes:
        chunk = self.data[self.offset:self.offset + n_bytes]
        self.offset += len(chunk)
        return chunk

    def sendall(self, blob: bytes) -> None:
        self.sent += blob


def _frame_bytes(payload: object, secret: bytes | None = None) -> bytes:
    sock = _ByteSock(b"")
    send_frame(sock, payload, secret=secret)
    return sock.sent


class TestFrameAuth:
    SECRET = "control-plane-secret"

    def test_resolve_queue_secret_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUEUE_SECRET", raising=False)
        assert resolve_queue_secret(None) is None
        assert resolve_queue_secret("abc") == b"abc"
        assert resolve_queue_secret(b"abc") == b"abc"
        monkeypatch.setenv("REPRO_QUEUE_SECRET", "from-env")
        assert resolve_queue_secret(None) == b"from-env"
        assert resolve_queue_secret("explicit") == b"explicit"
        assert resolve_queue_secret("") is None  # explicit empty forces auth off
        monkeypatch.setenv("REPRO_QUEUE_SECRET", "")
        assert resolve_queue_secret(None) is None

    def test_secured_roundtrip_end_to_end(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUEUE_SECRET", raising=False)
        server = QueueServer(secret=self.SECRET)
        try:
            client = NetWorkQueue(server.url, secret=self.SECRET, retries=0)
            server.enqueue("t-0", {"n": 1})
            claim = client.claim("w")
            assert claim is not None and claim.payload == {"n": 1}
            client.ack(claim, "w")
            assert client.stats().done == 1
            assert client.worker_done_counts() == {"w": 1}
        finally:
            server.close()

    def test_unauthenticated_client_rejected_before_unpickling(self, monkeypatch):
        """With a secret set, an unsigned frame must be rejected while still
        opaque bytes: `pickle.loads` in the transport is never reached."""
        server = QueueServer(secret=self.SECRET)
        try:
            server.enqueue("t-0", "payload")

            def poisoned_loads(blob):
                raise AssertionError("pickle.loads reached with an unauthenticated peer")

            monkeypatch.setattr(netqueue.pickle, "loads", poisoned_loads)
            intruder = NetWorkQueue(server.url, secret="", retries=0)
            with pytest.raises(QueueAuthError, match="unauthenticated"):
                intruder.claim("intruder")
            monkeypatch.undo()
            # The queue is untouched: the task is still claimable by a keyed worker.
            client = NetWorkQueue(server.url, secret=self.SECRET, retries=0)
            assert client.claim("w").task_id == "t-0"
        finally:
            server.close()

    def test_large_unsigned_frame_still_rejected_loudly(self):
        """The server drains a rejected frame's payload (bounded) before
        closing, so the error frame survives the round trip even when the
        unsigned request carries a hefty payload — the mis-keyed client gets
        QueueAuthError, never a silent connection reset read as 'sweep over'."""
        server = QueueServer(secret=self.SECRET)
        try:
            intruder = NetWorkQueue(server.url, secret="", retries=0)
            bulky = {"op": "ack", "padding": b"x" * (256 * 1024)}
            with pytest.raises(QueueAuthError, match="unauthenticated"):
                intruder._request(bulky)
        finally:
            server.close()

    def test_wrong_secret_rejected_loudly(self):
        server = QueueServer(secret=self.SECRET)
        try:
            wrong = NetWorkQueue(server.url, secret="not-the-secret", retries=0)
            with pytest.raises(QueueAuthError, match="signature mismatch"):
                wrong.stats()
        finally:
            server.close()

    def test_renew_surfaces_auth_rejection_instead_of_swallowing_it(self):
        """A rotated/mis-keyed secret mid-task must not silently stop the
        heartbeat (the lease would expire and the task re-run): renew raises
        QueueAuthError like claim and ack do."""
        server = QueueServer(secret=self.SECRET)
        try:
            keyed = NetWorkQueue(server.url, secret=self.SECRET, retries=0)
            server.enqueue("t-0", "p")
            claim = keyed.claim("w")
            mis_keyed = NetWorkQueue(server.url, secret="rotated-away", retries=0)
            with pytest.raises(QueueAuthError):
                mis_keyed.renew(claim)
        finally:
            server.close()

    def test_signed_client_against_open_server_fails_loudly(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUEUE_SECRET", raising=False)
        server = QueueServer()
        try:
            signed = NetWorkQueue(server.url, secret=self.SECRET, retries=0)
            with pytest.raises(QueueAuthError, match="no queue secret"):
                signed.stats()
        finally:
            server.close()

    def test_env_variable_keys_both_sides(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUEUE_SECRET", "env-keyed")
        server = QueueServer()  # picks the secret up from the environment
        try:
            client = NetWorkQueue(server.url)  # ditto
            server.enqueue("t-0", "p")
            assert client.claim("w").task_id == "t-0"
        finally:
            server.close()

    def test_tampered_signed_frame_answered_with_error_frame(self):
        """Flipping one payload byte of a correctly-keyed frame must produce a
        plain-text error frame (never a pickled response)."""
        server = QueueServer(secret=self.SECRET)
        try:
            frame = bytearray(_frame_bytes({"op": "stats"}, secret=resolve_queue_secret(self.SECRET)))
            frame[-1] ^= 0xFF
            with socket.create_connection((server.host, server.port), timeout=5) as sock:
                sock.sendall(bytes(frame))
                header = sock.recv(6)
            assert header[:2] == MAGIC_ERROR
        finally:
            server.close()

    def test_auth_error_frames_are_never_pickled(self):
        """The rejection a secured server sends is raw utf-8, parseable
        without trusting the peer."""
        sock = _ByteSock(b"")
        netqueue.send_error_frame(sock, "go away")
        magic, length = struct.unpack(">2sI", sock.sent[:6])
        assert magic == MAGIC_ERROR and sock.sent[6:] == b"go away"
        with pytest.raises(QueueAuthError, match="go away"):
            recv_frame(_ByteSock(sock.sent))


class TestFrameCodecFuzz:
    SECRET = b"fuzz-secret"

    def test_truncated_frames_error_cleanly(self):
        frame = _frame_bytes({"op": "poll", "padding": list(range(32))})
        for cut in range(len(frame)):
            with pytest.raises((ConnectionError, EOFError, ValueError)):
                recv_frame(_ByteSock(frame[:cut]))

    def test_truncated_signed_frames_error_cleanly(self):
        frame = _frame_bytes({"op": "poll"}, secret=self.SECRET)
        for cut in range(len(frame)):
            with pytest.raises((ConnectionError, EOFError, ValueError)):
                recv_frame(_ByteSock(frame[:cut]), secret=self.SECRET)

    def test_mutations_never_reach_unpickling_on_a_secured_endpoint(self, monkeypatch):
        """Byte-level fuzz of a validly-signed frame: any mutation must raise a
        clean frame error before `pickle.loads` is reached."""
        frame = _frame_bytes({"op": "claim", "worker_id": "w"}, secret=self.SECRET)

        def poisoned_loads(blob):
            raise AssertionError("pickle.loads reached on a mutated frame")

        monkeypatch.setattr(netqueue.pickle, "loads", poisoned_loads)
        rng = random.Random(0xC0FFEE)
        for _ in range(300):
            mutated = bytearray(frame)
            for _ in range(rng.randint(1, 3)):
                position = rng.randrange(len(mutated))
                flip = rng.randrange(1, 256)
                mutated[position] ^= flip
            with pytest.raises((ConnectionError, QueueAuthError)):
                recv_frame(_ByteSock(bytes(mutated)), secret=self.SECRET)

    def test_unsigned_and_garbage_frames_rejected_on_secured_endpoint(self, monkeypatch):
        def poisoned_loads(blob):
            raise AssertionError("pickle.loads reached for an unsigned frame")

        monkeypatch.setattr(netqueue.pickle, "loads", poisoned_loads)
        unsigned = _frame_bytes({"op": "claim"})
        with pytest.raises(FrameAuthError, match="unauthenticated"):
            recv_frame(_ByteSock(unsigned), secret=self.SECRET)
        rng = random.Random(42)
        for length in (0, 1, 6, 64):
            garbage = bytes(rng.randrange(256) for _ in range(length))
            with pytest.raises((ConnectionError, QueueAuthError)):
                recv_frame(_ByteSock(garbage), secret=self.SECRET)

    def test_header_mutations_error_cleanly_on_open_endpoint(self):
        """An *open* endpoint may reach the unpickler with garbage (that is
        its documented trust model) but must always raise cleanly: a mutated
        magic/length can shorten the payload into truncated pickle bytes."""
        import pickle as pickle_module

        frame = _frame_bytes({"op": "poll"})
        clean_errors = (
            ConnectionError, QueueAuthError, EOFError, pickle_module.UnpicklingError, ValueError,
        )
        for position in range(6):  # magic + length header
            for flip in (0x01, 0x80, 0xFF):
                mutated = bytearray(frame)
                mutated[position] ^= flip
                with pytest.raises(clean_errors):
                    recv_frame(_ByteSock(bytes(mutated)))

    def test_frame_deadline_defeats_a_trickling_peer(self, monkeypatch):
        """A peer feeding one byte per recv cannot stretch a frame read past
        the deadline: the budget covers the whole frame, not each recv."""
        frame = _frame_bytes({"op": "poll", "padding": "x" * 64})

        class TricklingSock(_ByteSock):
            def __init__(self, data, clock):
                super().__init__(data)
                self.clock = clock

            def settimeout(self, value):
                pass

            def recv(self, n_bytes):
                self.clock["now"] += 1.0  # each byte costs a second
                return super().recv(1)

        clock = {"now": 0.0}
        monkeypatch.setattr(netqueue.time, "monotonic", lambda: clock["now"])
        with pytest.raises(ConnectionError, match="deadline"):
            recv_frame(TricklingSock(frame, clock), deadline=10.0)
        # The same trickle with enough budget succeeds.
        clock["now"] = 0.0
        assert recv_frame(TricklingSock(frame, clock), deadline=10_000.0)["op"] == "poll"

    def test_oversized_length_rejected_without_allocation(self):
        header = struct.pack(">2sI", b"RQ", netqueue.MAX_FRAME_BYTES + 1)
        with pytest.raises(ConnectionError, match="oversized"):
            recv_frame(_ByteSock(header))
        error_header = struct.pack(">2sI", b"RE", netqueue.MAX_ERROR_BYTES + 1)
        with pytest.raises(ConnectionError, match="oversized"):
            recv_frame(_ByteSock(error_header))


# ---------------------------------------------------------------------------
# Client retry/backoff (satellite: coordinator restart must not kill workers)
# ---------------------------------------------------------------------------


class TestClientRetries:
    def test_transient_connection_refused_is_retried(self, monkeypatch):
        server = QueueServer()
        try:
            server.enqueue("t-0", "payload")
            real_connect = socket.create_connection
            attempts = {"n": 0}

            def flaky(address, timeout=None):
                attempts["n"] += 1
                if attempts["n"] <= 2:
                    raise ConnectionRefusedError("coordinator restarting")
                return real_connect(address, timeout=timeout)

            monkeypatch.setattr(netqueue.socket, "create_connection", flaky)
            client = NetWorkQueue(server.url, retries=3, backoff_s=0.01)
            claim = client.claim("w")
            assert claim is not None and claim.task_id == "t-0"
            assert attempts["n"] == 3  # two refusals + the success
        finally:
            server.close()

    def test_exhausted_retries_then_reads_as_stop(self, monkeypatch):
        attempts = {"n": 0}

        def always_refused(address, timeout=None):
            attempts["n"] += 1
            raise ConnectionRefusedError("gone for good")

        monkeypatch.setattr(netqueue.socket, "create_connection", always_refused)
        client = NetWorkQueue("tcp://127.0.0.1:1", retries=2, backoff_s=0.01)
        assert client.claim("w") is None
        assert attempts["n"] == 3  # initial + 2 retries, bounded
        attempts["n"] = 0
        assert client.stop_requested() is True
        assert attempts["n"] == 3

    def test_auth_rejection_is_not_retried(self, monkeypatch):
        server = QueueServer(secret="the-secret")
        try:
            real_connect = socket.create_connection
            attempts = {"n": 0}

            def counting(address, timeout=None):
                attempts["n"] += 1
                return real_connect(address, timeout=timeout)

            monkeypatch.setattr(netqueue.socket, "create_connection", counting)
            intruder = NetWorkQueue(server.url, secret="", retries=5, backoff_s=0.01)
            with pytest.raises(QueueAuthError):
                intruder.claim("w")
            assert attempts["n"] == 1  # retrying cannot fix a missing secret
        finally:
            server.close()

    def test_negative_retries_rejected(self):
        with pytest.raises(ExperimentError):
            NetWorkQueue("tcp://127.0.0.1:1", retries=-1)


# ---------------------------------------------------------------------------
# QueueStats / describe edge cases (satellite)
# ---------------------------------------------------------------------------


@pytest.fixture(params=TRANSPORTS)
def plain_queue(request, tmp_path):
    if request.param == "file":
        yield WorkQueue(tmp_path / "q", lease_timeout_s=300)
    else:
        server = QueueServer(lease_timeout_s=300)
        yield server
        server.close()


class TestQueueStatsEdgeCases:
    def test_empty_queue(self, plain_queue):
        stats = plain_queue.stats()
        assert stats == QueueStats(pending=0, claimed=0, done=0, failed=0)
        assert stats.describe() == "0 pending, 0 claimed, 0 done, 0 failed"
        assert plain_queue.worker_done_counts() == {}

    def test_failed_only_queue(self, plain_queue):
        for index in range(2):
            plain_queue.enqueue(f"t-{index}", "p")
            plain_queue.fail(plain_queue.claim("w"), "w", "boom")
        stats = plain_queue.stats()
        assert (stats.pending, stats.claimed, stats.done, stats.failed) == (0, 0, 0, 2)
        assert stats.describe() == "0 pending, 0 claimed, 0 done, 2 failed"
        assert plain_queue.worker_done_counts() == {}  # failures are not completions

    def test_shard_breakdown_counts_root_and_partitions(self, sharded_queue):
        queue = sharded_queue
        queue.enqueue("root-0", "p")
        queue.enqueue("s0-a", "p", shard=0)
        queue.enqueue("s0-b", "p", shard=0)
        queue.enqueue("s3-a", "p", shard=3)
        stats = queue.stats()
        assert stats.pending == 4
        assert stats.shard_pending == ((0, 2), (3, 1))  # empty shards omitted

    def test_worker_done_counts_parses_each_marker_once(self, tmp_path, monkeypatch):
        """Done markers are immutable: a progress poll must only read markers
        it has not seen before (O(delta), not O(all) — the same discipline
        stats() follows for the failed/ directory)."""
        queue = WorkQueue(tmp_path / "q")
        for index in range(3):
            queue.enqueue(f"t-{index}", "p")
            queue.ack(queue.claim(f"w-{index % 2}"), f"w-{index % 2}")
        assert queue.worker_done_counts() == {"w-0": 2, "w-1": 1}

        reads = {"n": 0}
        real_read_text = Path.read_text

        def counting_read_text(self, *args, **kwargs):
            reads["n"] += 1
            return real_read_text(self, *args, **kwargs)

        monkeypatch.setattr(Path, "read_text", counting_read_text)
        assert queue.worker_done_counts() == {"w-0": 2, "w-1": 1}
        assert reads["n"] == 0  # everything served from the marker memo
        queue.enqueue("t-3", "p")
        queue.ack(queue.claim("w-1"), "w-1")
        assert queue.worker_done_counts() == {"w-0": 2, "w-1": 2}
        assert reads["n"] == 1  # only the new marker was parsed

    def test_stats_are_sane_under_concurrent_claims(self, plain_queue):
        """The progress reporter polls stats() while workers claim/ack: every
        observation must be internally consistent (no negative or impossible
        counts), and the final state must be exact."""
        total = 30
        for index in range(total):
            plain_queue.enqueue(f"t-{index:02d}", index)

        errors: list[str] = []
        stop = threading.Event()

        def churn(name: str):
            while not stop.is_set():
                claim = plain_queue.claim(name)
                if claim is None:
                    return
                plain_queue.ack(claim, name)

        def observe():
            while not stop.is_set():
                stats = plain_queue.stats()
                counts = (stats.pending, stats.claimed, stats.done, stats.failed)
                if any(value < 0 for value in counts):
                    errors.append(f"negative count in {counts}")
                if stats.done > total:
                    errors.append(f"done overshot: {counts}")
                described = stats.describe()
                if f"{stats.done} done" not in described:
                    errors.append(f"describe out of sync: {described}")

        workers = [threading.Thread(target=churn, args=(f"w-{i}",)) for i in range(3)]
        observer = threading.Thread(target=observe, daemon=True)
        observer.start()
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=60)
        stop.set()
        observer.join(timeout=10)
        assert not errors, errors[:3]
        final = plain_queue.stats()
        assert (final.pending, final.claimed, final.done) == (0, 0, total)
        assert sum(plain_queue.worker_done_counts().values()) == total


# ---------------------------------------------------------------------------
# Lease-expiry boundary conditions (satellite)
# ---------------------------------------------------------------------------


class TestLeaseBoundary:
    def test_file_claim_renewed_exactly_at_the_timeout_edge_survives(self, tmp_path, monkeypatch):
        """age == lease_timeout is *not* expired (the boundary belongs to the
        live worker); one tick past it is."""
        queue = WorkQueue(tmp_path / "q", lease_timeout_s=60)
        queue.enqueue("t-0", "p")
        claim = queue.claim("edge-worker")
        renewed_at = claim.path.stat().st_mtime

        monkeypatch.setattr(WorkQueue, "filesystem_now", lambda self: renewed_at + 60.0)
        assert queue.requeue_expired() == []
        assert queue.has_live_claims()

        monkeypatch.setattr(WorkQueue, "filesystem_now", lambda self: renewed_at + 60.001)
        assert not queue.has_live_claims()
        assert queue.requeue_expired() == ["t-0"]

    def test_server_claim_renewed_exactly_at_the_deadline_survives(self, monkeypatch):
        clock = {"now": 1000.0}
        monkeypatch.setattr(netqueue.time, "monotonic", lambda: clock["now"])
        server = QueueServer(lease_timeout_s=60)
        try:
            server.enqueue("t-0", "p")
            assert server.claim("edge-worker") is not None  # deadline = 1060
            clock["now"] = 1060.0
            assert server.requeue_expired() == []
            assert server.has_live_claims()
            clock["now"] = 1060.000001
            assert not server.has_live_claims()
            assert server.requeue_expired() == ["t-0"]
        finally:
            monkeypatch.undo()
            server.close()

    def test_renew_at_the_edge_restarts_the_lease(self, tmp_path, monkeypatch):
        queue = WorkQueue(tmp_path / "q", lease_timeout_s=60)
        queue.enqueue("t-0", "p")
        claim = queue.claim("w")
        queue.renew(claim)  # the renewal that lands exactly at the edge
        renewed_at = claim.path.stat().st_mtime
        monkeypatch.setattr(WorkQueue, "filesystem_now", lambda self: renewed_at + 59.9)
        assert queue.requeue_expired() == []
        assert queue.has_live_claims()

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_ack_landing_before_the_expiry_sweep_wins(self, tmp_path, transport):
        """requeue_expired racing an in-flight ack: when the ack lands first,
        the sweep must not resurrect the task — it completes exactly once."""
        if transport == "file":
            queue = WorkQueue(tmp_path / "q", lease_timeout_s=0.05)
        else:
            queue = QueueServer(lease_timeout_s=0.05)
        try:
            queue.enqueue("t-0", "p")
            claim = queue.claim("slow-worker")
            time.sleep(0.1)  # the lease is past its deadline, sweep imminent
            queue.ack(claim, "slow-worker")  # ...but the ack arrives first
            assert queue.requeue_expired() == []
            assert queue.done_ids() == {"t-0"}
            assert queue.claim("other") is None  # nothing to execute a second time
            stats = queue.stats()
            assert (stats.pending, stats.claimed, stats.done) == (0, 0, 1)
        finally:
            if transport == "tcp":
                queue.close()

    def test_server_ack_after_requeue_completes_exactly_once(self):
        """The opposite order on the server: the zombie ack wins, the
        re-queued duplicate is dropped, and no second execution is visible."""
        server = QueueServer(lease_timeout_s=0.05)
        try:
            server.enqueue("t-0", "p")
            zombie = server.claim("zombie")
            time.sleep(0.1)
            assert server.requeue_expired() == ["t-0"]
            server.ack(zombie, "zombie")
            assert server.done_ids() == {"t-0"}
            assert server.claim("other") is None
            assert server.worker_done_counts() == {"zombie": 1}
        finally:
            server.close()


# ---------------------------------------------------------------------------
# Stress: 4-worker stolen sweeps stay byte-identical to serial (acceptance)
# ---------------------------------------------------------------------------


def _grid_parts(scale: float = 0.2):
    spec = DatabaseSpec.create("imdb", scale=scale, seed=7, config=SIMULATION_CONFIG)
    database = get_process_registry().get(spec)
    workload = build_workload("job", database.schema)
    splits = [
        DatasetSplit(workload.name, SplitSampling.RANDOM, 0,
                     train_ids=("1a", "2a", "3a"), test_ids=("1b", "2b")),
        DatasetSplit(workload.name, SplitSampling.RANDOM, 1,
                     train_ids=("6a", "8a", "4a"), test_ids=("3a", "1a")),
        DatasetSplit(workload.name, SplitSampling.RANDOM, 2,
                     train_ids=("10a", "17a", "6b"), test_ids=("2a", "20a")),
    ]
    return spec, workload, splits


GRID_CONFIG = ExperimentConfig(
    optimizer_kwargs={"bao": {"training_passes": 1}},
    deterministic_timing=True,
)


class TestStolenSweepStress:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_four_worker_stealing_sweep_byte_identical_with_progress(
        self, tmp_path, transport, monkeypatch
    ):
        """The PR's acceptance criterion: a 4-worker sweep with work stealing
        enabled is byte-identical to serial on both transports while emitting
        at least one valid progress snapshot (and, on tcp, running fully
        HMAC-authenticated)."""
        if transport == "tcp":
            monkeypatch.setenv("REPRO_QUEUE_SECRET", "stress-secret")
        spec, workload, splits = _grid_parts()
        methods = ("postgres", "bao")
        snapshots = []
        runner = ParallelExperimentRunner(
            spec,
            workload,
            experiment_config=GRID_CONFIG,
            runtime_config=distributed_runtime(
                tmp_path / "store",
                workers=4,
                shard_count=4,
                lease_timeout_s=30,
                queue_url="tcp://127.0.0.1:0" if transport == "tcp" else None,
                work_stealing=True,
                progress_interval_s=0.25,
            ),
            progress_callback=snapshots.append,
        )
        distributed = [
            json.dumps(r.to_dict(), sort_keys=True) for r in runner.run_grid(methods, splits)
        ]

        serial = ParallelExperimentRunner(
            spec, workload, experiment_config=GRID_CONFIG, runtime_config=RuntimeConfig(workers=1)
        )
        expected = [
            json.dumps(r.to_dict(), sort_keys=True) for r in serial.run_grid(methods, splits)
        ]
        assert distributed == expected  # stolen work changes placement, never bytes

        assert snapshots, "the sweep emitted no progress snapshot"
        final = snapshots[-1]
        assert final.total == len(methods) * len(splits)
        assert final.done == final.total and final.remaining == 0
        json.loads(final.to_json())  # machine-readable end to end
        assert sum(final.workers.values()) == final.total
        assert runner._distributed_stolen >= 0
        assert runner._distributed_progress is not None
        assert runner._distributed_progress.latest is not None

    def test_callback_without_interval_gets_only_the_final_snapshot(self, tmp_path):
        """progress_interval_s=None disables *periodic* polling (as documented
        on RuntimeConfig): a bare progress_callback still receives exactly the
        end-of-sweep snapshot."""
        spec, workload, splits = _grid_parts()
        snapshots = []
        runner = ParallelExperimentRunner(
            spec,
            workload,
            experiment_config=GRID_CONFIG,
            runtime_config=distributed_runtime(
                tmp_path / "store", workers=1, shard_count=2, lease_timeout_s=30
            ),
            progress_callback=snapshots.append,
        )
        runner.run_grid(("postgres",), splits[:1])
        assert len(snapshots) == 1
        assert snapshots[0].done == snapshots[0].total == 1

        # A fully-resumed re-run (nothing enqueued) still emits its final
        # completion snapshot — a dashboard must see the sweep finish.
        runner.run_grid(("postgres",), splits[:1])
        assert len(snapshots) == 2
        assert snapshots[1].total == 0 and snapshots[1].remaining == 0

    def test_stealing_disabled_still_completes(self, tmp_path):
        """work_stealing=False: starving workers idle but the sweep still
        finishes through shard owners (a safety valve, not a deadlock)."""
        spec, workload, splits = _grid_parts()
        runner = ParallelExperimentRunner(
            spec,
            workload,
            experiment_config=GRID_CONFIG,
            runtime_config=distributed_runtime(
                tmp_path / "store",
                workers=2,
                shard_count=2,
                lease_timeout_s=30,
                work_stealing=False,
            ),
        )
        results = runner.run_grid(("postgres",), splits[:1])
        assert len(results) == 1
        assert runner._distributed_stolen == 0


class TestProtocolCompliance:
    def test_transports_still_satisfy_the_queue_protocol(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", shard_count=4)
        assert isinstance(queue, QueueTransport)
        server = QueueServer()
        try:
            assert isinstance(server, QueueTransport)
        finally:
            server.close()
