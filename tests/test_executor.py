"""Tests for the execution engine: correctness, cache behaviour, timing, EXPLAIN."""

import itertools

import numpy as np
import pytest

from repro.catalog.schema import Column, ForeignKey, Index, Schema, Table
from repro.catalog.statistics import NULL_SENTINEL
from repro.executor.engine import ExecutionEngine
from repro.executor.explain import explain_analyze, explain_analyze_text, explain_plan
from repro.executor.operators import OperatorMetrics, join_match_positions
from repro.executor.timing import TimingModel
from repro.config import SIMULATION_CONFIG
from repro.optimizer.enumeration import enumerate_join_trees, left_deep_plan_from_order
from repro.optimizer.planner import Planner
from repro.plans.hints import HintSet, OperatorToggles
from repro.plans.physical import ScanType
from repro.sql.binder import bind_sql
from repro.storage.database import Database
from repro.storage.table_data import TableData

COUNT_QUERY = (
    "SELECT COUNT(*) FROM title AS t, movie_keyword AS mk, keyword AS k "
    "WHERE t.id = mk.movie_id AND mk.keyword_id = k.id "
    "AND k.keyword = 'sequel' AND t.production_year > 2000"
)


@pytest.fixture(scope="module")
def engine_and_planner(imdb_db):
    return ExecutionEngine(imdb_db), Planner(imdb_db)


def brute_force_count(db, keyword: str, year: int) -> int:
    """Reference implementation of COUNT_QUERY using raw numpy joins."""
    title = db.table_data("title")
    mk = db.table_data("movie_keyword")
    kw = db.table_data("keyword")
    kw_code = kw.encode("keyword", keyword)
    keyword_ids = kw.column("id")[kw.column("keyword") == kw_code]
    title_ok = set(title.column("id")[title.column("production_year") > year].tolist())
    count = 0
    movie_ids = mk.column("movie_id")
    mk_keyword = mk.column("keyword_id")
    keyword_set = set(keyword_ids.tolist())
    for movie, keyword_id in zip(movie_ids.tolist(), mk_keyword.tolist()):
        if keyword_id in keyword_set and movie in title_ok:
            count += 1
    return count


class TestJoinMatching:
    def test_join_match_positions_against_bruteforce(self):
        rng = np.random.default_rng(5)
        left = rng.integers(0, 20, 50).astype(np.int64)
        right = rng.integers(0, 20, 70).astype(np.int64)
        lp, rp = join_match_positions(left, right)
        got = sorted(zip(lp.tolist(), rp.tolist()))
        expected = sorted(
            (i, j) for i in range(50) for j in range(70) if left[i] == right[j]
        )
        assert got == expected

    def test_empty_inputs(self):
        lp, rp = join_match_positions(np.array([], dtype=np.int64), np.array([1], dtype=np.int64))
        assert lp.size == 0 and rp.size == 0


class TestCorrectness:
    def test_count_matches_bruteforce(self, imdb_db, engine_and_planner):
        engine, planner = engine_and_planner
        query = bind_sql(COUNT_QUERY, imdb_db.schema, name="count")
        plan = planner.plan(query)
        result = engine.execute(query, plan)
        expected = brute_force_count(imdb_db, "sequel", 2000)
        assert result.rows[0][0] == expected

    def test_all_plan_shapes_agree_on_result(self, imdb_db, engine_and_planner):
        """Every enumerated join tree of the same query must return the same count."""
        engine, planner = engine_and_planner
        query = bind_sql(COUNT_QUERY, imdb_db.schema, name="count")
        counts = set()
        for plan in enumerate_join_trees(query, planner.cost_model):
            counts.add(engine.execute(query, plan).rows[0][0])
        assert len(counts) == 1

    def test_forced_orders_agree_on_result(self, imdb_db, engine_and_planner):
        engine, planner = engine_and_planner
        query = bind_sql(COUNT_QUERY, imdb_db.schema, name="count")
        results = set()
        for order in (["t", "mk", "k"], ["k", "mk", "t"], ["mk", "t", "k"]):
            plan = left_deep_plan_from_order(query, planner.cost_model, order)
            results.add(engine.execute(query, plan).rows[0][0])
        assert len(results) == 1

    def test_operator_toggles_do_not_change_results(self, imdb_db, engine_and_planner):
        engine, planner = engine_and_planner
        query = bind_sql(COUNT_QUERY, imdb_db.schema, name="count")
        baseline = engine.execute(query, planner.plan(query)).rows
        for toggles in (
            OperatorToggles(hashjoin=False),
            OperatorToggles(nestloop=False),
            OperatorToggles(indexscan=False, bitmapscan=False),
        ):
            plan = planner.plan(query, HintSet(toggles=toggles))
            assert engine.execute(query, plan).rows == baseline

    def test_min_aggregate_decodes_text(self, imdb_db, engine_and_planner):
        engine, planner = engine_and_planner
        query = bind_sql(
            "SELECT MIN(k.keyword) FROM keyword AS k, movie_keyword AS mk "
            "WHERE mk.keyword_id = k.id",
            imdb_db.schema,
            name="min",
        )
        result = engine.execute(query, planner.plan(query))
        assert isinstance(result.rows[0][0], str)

    def test_group_by_produces_one_row_per_group(self, imdb_db, engine_and_planner):
        engine, planner = engine_and_planner
        query = bind_sql(
            "SELECT kt.kind, COUNT(*) FROM kind_type AS kt, title AS t "
            "WHERE t.kind_id = kt.id GROUP BY kt.kind",
            imdb_db.schema,
            name="group",
        )
        result = engine.execute(query, planner.plan(query))
        kinds = [row[0] for row in result.rows]
        assert len(kinds) == len(set(kinds))
        assert sum(row[1] for row in result.rows) == imdb_db.table_data("title").row_count

    def test_empty_result_count_is_zero(self, imdb_db, engine_and_planner):
        engine, planner = engine_and_planner
        query = bind_sql(
            "SELECT COUNT(*) FROM title AS t, kind_type AS kt WHERE t.kind_id = kt.id "
            "AND kt.kind = 'movie' AND t.production_year > 2100",
            imdb_db.schema,
            name="empty",
        )
        result = engine.execute(query, planner.plan(query))
        assert result.rows[0][0] == 0


class TestCacheAndTiming:
    def test_cold_run_slower_than_hot_run(self, imdb_db):
        engine = ExecutionEngine(imdb_db)
        planner = Planner(imdb_db)
        query = bind_sql(COUNT_QUERY, imdb_db.schema, name="count")
        plan = planner.plan(query)
        imdb_db.drop_caches()
        first = engine.execute(query, plan).execution_time_ms
        second = engine.execute(query, plan).execution_time_ms
        third = engine.execute(query, plan).execution_time_ms
        assert first > second
        assert abs(second - third) / second < 0.15

    def test_timeout_flags_result(self, imdb_db, engine_and_planner):
        engine, planner = engine_and_planner
        query = bind_sql(COUNT_QUERY, imdb_db.schema, name="count")
        plan = planner.plan(query)
        result = engine.execute(query, plan, timeout_ms=0.0001)
        assert result.timed_out
        assert result.execution_time_ms == pytest.approx(0.0001)

    def test_timing_model_parallelism_speedup(self):
        metrics = OperatorMetrics(tuples_in=100_000, seq_pages_read=500)
        serial = TimingModel(SIMULATION_CONFIG.with_overrides(max_parallel_workers_per_gather=0))
        parallel = TimingModel(SIMULATION_CONFIG)
        assert parallel.execution_time_ms(metrics, with_noise=False) < serial.execution_time_ms(
            metrics, with_noise=False
        )

    def test_timing_model_noise_bounded(self):
        metrics = OperatorMetrics(tuples_in=10_000)
        model = TimingModel(SIMULATION_CONFIG, noise_sigma=0.02)
        times = [model.execution_time_ms(metrics) for _ in range(50)]
        spread = (max(times) - min(times)) / np.mean(times)
        assert spread < 0.25

    def test_metrics_merge_accumulates(self):
        a = OperatorMetrics(pages_hit=1, tuples_in=10)
        b = OperatorMetrics(pages_hit=2, cpu_ops=5)
        a.merge(b)
        assert a.pages_hit == 3 and a.cpu_ops == 5 and a.tuples_in == 10


# ---------------------------------------------------------------------------
# Brute-force oracle on small generated tables (incl. NULL-sentinel handling)
# ---------------------------------------------------------------------------


def _tiny_database() -> Database:
    """Three small tables whose join columns deliberately contain NULLs.

    ``child.parent_id`` and ``link.parent_id`` are both nullable foreign keys
    into ``parent`` — joining *child* to *link* therefore puts NULLs on both
    sides of the equi-join, the case where SQL semantics (NULL never equals
    NULL) and a naive sentinel match diverge.
    """
    rng = np.random.default_rng(12345)

    parent = Table(
        "parent",
        columns=[Column("id"), Column("category"), Column("score")],
    )
    child = Table(
        "child",
        columns=[Column("id"), Column("parent_id"), Column("kind")],
        indexes=[Index(table="child", column="parent_id"), Index(table="child", column="kind")],
    )
    link = Table(
        "link",
        columns=[Column("id"), Column("parent_id"), Column("weight")],
        indexes=[Index(table="link", column="parent_id")],
    )
    schema = Schema(
        "tiny-oracle",
        tables=[parent, child, link],
        foreign_keys=[
            ForeignKey("child", "parent_id", "parent", "id"),
            ForeignKey("link", "parent_id", "parent", "id"),
        ],
    )

    n_parent, n_child, n_link = 12, 40, 30

    def nullable_fk(size: int, null_frac: float) -> np.ndarray:
        column = rng.integers(1, n_parent + 1, size).astype(np.int64)
        column[rng.random(size) < null_frac] = NULL_SENTINEL
        return column

    kind = rng.integers(0, 9, n_child).astype(np.int64)
    kind[rng.random(n_child) < 0.2] = NULL_SENTINEL

    tables = {
        "parent": TableData(
            table=parent,
            columns={
                "id": np.arange(1, n_parent + 1, dtype=np.int64),
                "category": rng.integers(0, 3, n_parent).astype(np.int64),
                "score": rng.integers(0, 100, n_parent).astype(np.int64),
            },
        ),
        "child": TableData(
            table=child,
            columns={
                "id": np.arange(1, n_child + 1, dtype=np.int64),
                "parent_id": nullable_fk(n_child, 0.25),
                "kind": kind,
            },
        ),
        "link": TableData(
            table=link,
            columns={
                "id": np.arange(1, n_link + 1, dtype=np.int64),
                "parent_id": nullable_fk(n_link, 0.3),
                "weight": rng.integers(0, 50, n_link).astype(np.int64),
            },
        ),
    }
    return Database(schema=schema, tables=tables, config=SIMULATION_CONFIG)


def _oracle_filter_ok(data, predicate, row: int) -> bool:
    """SQL three-valued logic on one row: NULL fails everything but IS NULL."""
    value = int(data.column(predicate.column)[row])
    if predicate.op == "is_null":
        return value == NULL_SENTINEL
    if predicate.op == "is_not_null":
        return value != NULL_SENTINEL
    if value == NULL_SENTINEL:
        return False
    literal = data.encode(predicate.column, predicate.value)
    if predicate.op == "=":
        return value == literal
    if predicate.op == "!=":
        return value != literal
    if predicate.op == "<":
        return value < literal
    if predicate.op == "<=":
        return value <= literal
    if predicate.op == ">":
        return value > literal
    if predicate.op == ">=":
        return value >= literal
    raise NotImplementedError(predicate.op)


def oracle_tuples(db: Database, query) -> list[dict[str, int]]:
    """Reference evaluation: filters then an exhaustive nested-loop join."""
    filtered: list[tuple[str, list[int]]] = []
    for relation in query.relations:
        data = db.table_data(relation.table)
        predicates = query.filters_for(relation.alias)
        rows = [
            row
            for row in range(data.row_count)
            if all(_oracle_filter_ok(data, p, row) for p in predicates)
        ]
        filtered.append((relation.alias, rows))

    aliases = [alias for alias, _ in filtered]
    results = []
    for combo in itertools.product(*(rows for _, rows in filtered)):
        assignment = dict(zip(aliases, combo))
        ok = True
        for join in query.joins:
            left = int(
                db.table_data(query.table_of(join.left_alias)).column(join.left_column)[
                    assignment[join.left_alias]
                ]
            )
            right = int(
                db.table_data(query.table_of(join.right_alias)).column(join.right_column)[
                    assignment[join.right_alias]
                ]
            )
            if left == NULL_SENTINEL or right == NULL_SENTINEL or left != right:
                ok = False
                break
        if ok:
            results.append(assignment)
    return results


@pytest.fixture(scope="module")
def tiny_db():
    return _tiny_database()


@pytest.fixture(scope="module")
def tiny_engine(tiny_db):
    return ExecutionEngine(tiny_db)


class TestNestedLoopOracle:
    def _count(self, engine, db, sql: str):
        query = bind_sql(sql, db.schema, name="oracle")
        planner = Planner(db)
        result = engine.execute(query, planner.plan(query))
        return query, int(result.rows[0][0])

    def test_fk_join_with_nulls_matches_oracle(self, tiny_db, tiny_engine):
        sql = (
            "SELECT COUNT(*) FROM child AS c, parent AS p WHERE c.parent_id = p.id"
        )
        query, count = self._count(tiny_engine, tiny_db, sql)
        assert count == len(oracle_tuples(tiny_db, query))

    def test_null_on_both_sides_never_matches(self, tiny_db, tiny_engine):
        """child ⋈ link on two *nullable* columns: NULL = NULL must not match."""
        child_nulls = int(
            (tiny_db.table_data("child").column("parent_id") == NULL_SENTINEL).sum()
        )
        link_nulls = int(
            (tiny_db.table_data("link").column("parent_id") == NULL_SENTINEL).sum()
        )
        assert child_nulls > 0 and link_nulls > 0  # the test must exercise NULLs
        sql = "SELECT COUNT(*) FROM child AS c, link AS l WHERE c.parent_id = l.parent_id"
        query, count = self._count(tiny_engine, tiny_db, sql)
        expected = len(oracle_tuples(tiny_db, query))
        assert count == expected
        # Sanity: a sentinel-blind join would have overcounted by exactly the
        # number of NULL×NULL pairs.
        assert count + child_nulls * link_nulls > expected

    def test_three_way_join_all_plan_shapes_match_oracle(self, tiny_db, tiny_engine):
        sql = (
            "SELECT COUNT(*) FROM child AS c, parent AS p, link AS l "
            "WHERE c.parent_id = p.id AND l.parent_id = p.id AND p.score > 20"
        )
        query = bind_sql(sql, tiny_db.schema, name="oracle3")
        expected = len(oracle_tuples(tiny_db, query))
        planner = Planner(tiny_db)
        counts = {
            int(tiny_engine.execute(query, plan).rows[0][0])
            for plan in enumerate_join_trees(query, planner.cost_model)
        }
        assert counts == {expected}

    def test_filtered_join_matches_oracle(self, tiny_db, tiny_engine):
        sql = (
            "SELECT COUNT(*) FROM child AS c, parent AS p "
            "WHERE c.parent_id = p.id AND c.kind > 3 AND p.category = 1"
        )
        query, count = self._count(tiny_engine, tiny_db, sql)
        assert count == len(oracle_tuples(tiny_db, query))

    def test_is_null_filter_matches_oracle(self, tiny_db, tiny_engine):
        sql = "SELECT COUNT(*) FROM child AS c WHERE c.parent_id IS NULL"
        query, count = self._count(tiny_engine, tiny_db, sql)
        oracle = len(oracle_tuples(tiny_db, query))
        assert count == oracle > 0

    def test_index_scan_below_filter_excludes_nulls(self, tiny_db, tiny_engine):
        """`kind < 5` via an index range scan must not sweep in NULL rows."""
        sql = "SELECT COUNT(*) FROM child AS c WHERE c.kind < 5"
        query = bind_sql(sql, tiny_db.schema, name="below")
        planner = Planner(tiny_db)
        expected = len(oracle_tuples(tiny_db, query))
        counts = {}
        for scan_type in (ScanType.SEQ, ScanType.INDEX, ScanType.BITMAP):
            hints = HintSet(scan_methods={"c": scan_type})
            plan = planner.plan(query, hints)
            counts[scan_type] = int(tiny_engine.execute(query, plan).rows[0][0])
        assert counts == {
            ScanType.SEQ: expected,
            ScanType.INDEX: expected,
            ScanType.BITMAP: expected,
        }

    def test_forced_nestloop_uses_null_aware_index_probe(self, tiny_db, tiny_engine):
        """An index nested loop probing with NULL outer keys must skip them."""
        sql = "SELECT COUNT(*) FROM link AS l, child AS c WHERE l.parent_id = c.parent_id"
        query = bind_sql(sql, tiny_db.schema, name="inl")
        expected = len(oracle_tuples(tiny_db, query))
        planner = Planner(tiny_db)
        hints = HintSet(toggles=OperatorToggles(hashjoin=False, mergejoin=False))
        plan = planner.plan(query, hints)
        assert int(tiny_engine.execute(query, plan).rows[0][0]) == expected

    def test_index_nestloop_applies_every_non_probe_predicate(self):
        """Regression: a join predicate ahead of the probe must not be dropped.

        ``s.x = i.val`` has no index on the inner side, so the probe runs on
        the *second* predicate (``i.grp`` is indexed).  The executor used to
        take the outer probe keys from the first predicate and only apply
        ``predicates[1:]`` as post-join filters — probing the index with the
        wrong outer values and silently dropping the first join condition,
        which on this data turns 3 result rows into 0.  Index nested loop and
        hash join must agree with the brute-force oracle.
        """
        from repro.plans.physical import JoinNode, JoinType, ScanNode

        src = Table("src", columns=[Column("id"), Column("x"), Column("grp")])
        item = Table(
            "item",
            columns=[Column("id"), Column("grp"), Column("val")],
            indexes=[Index(table="item", column="grp")],
        )
        schema = Schema("probe-order", tables=[src, item])
        db = Database(
            schema=schema,
            tables={
                "src": TableData(
                    table=src,
                    columns={
                        "id": np.array([1, 2, 3, 4, 5], dtype=np.int64),
                        "x": np.array([10, 30, 10, 1, 10], dtype=np.int64),
                        "grp": np.array([1, 1, 2, 2, NULL_SENTINEL], dtype=np.int64),
                    },
                ),
                "item": TableData(
                    table=item,
                    columns={
                        "id": np.array([1, 2, 3, 4], dtype=np.int64),
                        "grp": np.array([1, 1, 2, NULL_SENTINEL], dtype=np.int64),
                        "val": np.array([10, 30, 10, 10], dtype=np.int64),
                    },
                ),
            },
            config=SIMULATION_CONFIG,
        )
        engine = ExecutionEngine(db)
        sql = "SELECT COUNT(*) FROM src AS s, item AS i WHERE s.x = i.val AND s.grp = i.grp"
        query = bind_sql(sql, db.schema, name="multi-pred")
        expected = len(oracle_tuples(db, query))
        predicates = tuple(query.joins)
        assert predicates[0].column_for("i") == "val"  # unindexed: probe is predicates[1]
        assert db.index("item", "val") is None and db.index("item", "grp") is not None

        outer = ScanNode(alias="s", table="src")
        inner = ScanNode(alias="i", table="item")
        counts = {}
        for join_type in (JoinType.NESTED_LOOP, JoinType.HASH):
            plan = JoinNode(join_type=join_type, left=outer, right=inner, predicates=predicates)
            counts[join_type] = int(engine.execute(query, plan).rows[0][0])
        assert counts[JoinType.NESTED_LOOP] == counts[JoinType.HASH] == expected > 0

    def test_group_by_matches_oracle(self, tiny_db, tiny_engine):
        sql = (
            "SELECT p.category, COUNT(*) FROM parent AS p, child AS c "
            "WHERE c.parent_id = p.id GROUP BY p.category"
        )
        query = bind_sql(sql, tiny_db.schema, name="group-oracle")
        tuples = oracle_tuples(tiny_db, query)
        category_column = tiny_db.table_data("parent").column("category")
        expected: dict[int, int] = {}
        for assignment in tuples:
            category = int(category_column[assignment["p"]])
            expected[category] = expected.get(category, 0) + 1
        planner = Planner(tiny_db)
        result = tiny_engine.execute(query, planner.plan(query))
        got = {int(row[0]): int(row[1]) for row in result.rows}
        assert got == expected


class TestExplain:
    def test_explain_plan_text(self, imdb_db, engine_and_planner):
        _, planner = engine_and_planner
        query = bind_sql(COUNT_QUERY, imdb_db.schema, name="count")
        text = explain_plan(planner.plan(query))
        assert "Scan" in text and "rows=" in text

    def test_explain_analyze_structure(self, imdb_db, engine_and_planner):
        engine, planner = engine_and_planner
        query = bind_sql(COUNT_QUERY, imdb_db.schema, name="count")
        result = planner.plan_with_info(query)
        execution = engine.execute(query, result.plan)
        payload = explain_analyze(result.plan, execution, result.planning_time_ms)
        assert payload["planning_time_ms"] == result.planning_time_ms
        assert payload["plan"]["children"]
        text = explain_analyze_text(result.plan, execution, result.planning_time_ms)
        assert "Execution Time" in text and "Planning Time" in text
