"""Tests for the execution engine: correctness, cache behaviour, timing, EXPLAIN."""

import numpy as np
import pytest

from repro.executor.engine import ExecutionEngine
from repro.executor.explain import explain_analyze, explain_analyze_text, explain_plan
from repro.executor.operators import OperatorMetrics, join_match_positions
from repro.executor.timing import TimingModel
from repro.config import SIMULATION_CONFIG
from repro.optimizer.enumeration import enumerate_join_trees, left_deep_plan_from_order
from repro.optimizer.planner import Planner
from repro.plans.hints import HintSet, OperatorToggles
from repro.sql.binder import bind_sql

COUNT_QUERY = (
    "SELECT COUNT(*) FROM title AS t, movie_keyword AS mk, keyword AS k "
    "WHERE t.id = mk.movie_id AND mk.keyword_id = k.id "
    "AND k.keyword = 'sequel' AND t.production_year > 2000"
)


@pytest.fixture(scope="module")
def engine_and_planner(imdb_db):
    return ExecutionEngine(imdb_db), Planner(imdb_db)


def brute_force_count(db, keyword: str, year: int) -> int:
    """Reference implementation of COUNT_QUERY using raw numpy joins."""
    title = db.table_data("title")
    mk = db.table_data("movie_keyword")
    kw = db.table_data("keyword")
    kw_code = kw.encode("keyword", keyword)
    keyword_ids = kw.column("id")[kw.column("keyword") == kw_code]
    title_ok = set(title.column("id")[title.column("production_year") > year].tolist())
    count = 0
    movie_ids = mk.column("movie_id")
    mk_keyword = mk.column("keyword_id")
    keyword_set = set(keyword_ids.tolist())
    for movie, keyword_id in zip(movie_ids.tolist(), mk_keyword.tolist()):
        if keyword_id in keyword_set and movie in title_ok:
            count += 1
    return count


class TestJoinMatching:
    def test_join_match_positions_against_bruteforce(self):
        rng = np.random.default_rng(5)
        left = rng.integers(0, 20, 50).astype(np.int64)
        right = rng.integers(0, 20, 70).astype(np.int64)
        lp, rp = join_match_positions(left, right)
        got = sorted(zip(lp.tolist(), rp.tolist()))
        expected = sorted(
            (i, j) for i in range(50) for j in range(70) if left[i] == right[j]
        )
        assert got == expected

    def test_empty_inputs(self):
        lp, rp = join_match_positions(np.array([], dtype=np.int64), np.array([1], dtype=np.int64))
        assert lp.size == 0 and rp.size == 0


class TestCorrectness:
    def test_count_matches_bruteforce(self, imdb_db, engine_and_planner):
        engine, planner = engine_and_planner
        query = bind_sql(COUNT_QUERY, imdb_db.schema, name="count")
        plan = planner.plan(query)
        result = engine.execute(query, plan)
        expected = brute_force_count(imdb_db, "sequel", 2000)
        assert result.rows[0][0] == expected

    def test_all_plan_shapes_agree_on_result(self, imdb_db, engine_and_planner):
        """Every enumerated join tree of the same query must return the same count."""
        engine, planner = engine_and_planner
        query = bind_sql(COUNT_QUERY, imdb_db.schema, name="count")
        counts = set()
        for plan in enumerate_join_trees(query, planner.cost_model):
            counts.add(engine.execute(query, plan).rows[0][0])
        assert len(counts) == 1

    def test_forced_orders_agree_on_result(self, imdb_db, engine_and_planner):
        engine, planner = engine_and_planner
        query = bind_sql(COUNT_QUERY, imdb_db.schema, name="count")
        results = set()
        for order in (["t", "mk", "k"], ["k", "mk", "t"], ["mk", "t", "k"]):
            plan = left_deep_plan_from_order(query, planner.cost_model, order)
            results.add(engine.execute(query, plan).rows[0][0])
        assert len(results) == 1

    def test_operator_toggles_do_not_change_results(self, imdb_db, engine_and_planner):
        engine, planner = engine_and_planner
        query = bind_sql(COUNT_QUERY, imdb_db.schema, name="count")
        baseline = engine.execute(query, planner.plan(query)).rows
        for toggles in (
            OperatorToggles(hashjoin=False),
            OperatorToggles(nestloop=False),
            OperatorToggles(indexscan=False, bitmapscan=False),
        ):
            plan = planner.plan(query, HintSet(toggles=toggles))
            assert engine.execute(query, plan).rows == baseline

    def test_min_aggregate_decodes_text(self, imdb_db, engine_and_planner):
        engine, planner = engine_and_planner
        query = bind_sql(
            "SELECT MIN(k.keyword) FROM keyword AS k, movie_keyword AS mk "
            "WHERE mk.keyword_id = k.id",
            imdb_db.schema,
            name="min",
        )
        result = engine.execute(query, planner.plan(query))
        assert isinstance(result.rows[0][0], str)

    def test_group_by_produces_one_row_per_group(self, imdb_db, engine_and_planner):
        engine, planner = engine_and_planner
        query = bind_sql(
            "SELECT kt.kind, COUNT(*) FROM kind_type AS kt, title AS t "
            "WHERE t.kind_id = kt.id GROUP BY kt.kind",
            imdb_db.schema,
            name="group",
        )
        result = engine.execute(query, planner.plan(query))
        kinds = [row[0] for row in result.rows]
        assert len(kinds) == len(set(kinds))
        assert sum(row[1] for row in result.rows) == imdb_db.table_data("title").row_count

    def test_empty_result_count_is_zero(self, imdb_db, engine_and_planner):
        engine, planner = engine_and_planner
        query = bind_sql(
            "SELECT COUNT(*) FROM title AS t, kind_type AS kt WHERE t.kind_id = kt.id "
            "AND kt.kind = 'movie' AND t.production_year > 2100",
            imdb_db.schema,
            name="empty",
        )
        result = engine.execute(query, planner.plan(query))
        assert result.rows[0][0] == 0


class TestCacheAndTiming:
    def test_cold_run_slower_than_hot_run(self, imdb_db):
        engine = ExecutionEngine(imdb_db)
        planner = Planner(imdb_db)
        query = bind_sql(COUNT_QUERY, imdb_db.schema, name="count")
        plan = planner.plan(query)
        imdb_db.drop_caches()
        first = engine.execute(query, plan).execution_time_ms
        second = engine.execute(query, plan).execution_time_ms
        third = engine.execute(query, plan).execution_time_ms
        assert first > second
        assert abs(second - third) / second < 0.15

    def test_timeout_flags_result(self, imdb_db, engine_and_planner):
        engine, planner = engine_and_planner
        query = bind_sql(COUNT_QUERY, imdb_db.schema, name="count")
        plan = planner.plan(query)
        result = engine.execute(query, plan, timeout_ms=0.0001)
        assert result.timed_out
        assert result.execution_time_ms == pytest.approx(0.0001)

    def test_timing_model_parallelism_speedup(self):
        metrics = OperatorMetrics(tuples_in=100_000, seq_pages_read=500)
        serial = TimingModel(SIMULATION_CONFIG.with_overrides(max_parallel_workers_per_gather=0))
        parallel = TimingModel(SIMULATION_CONFIG)
        assert parallel.execution_time_ms(metrics, with_noise=False) < serial.execution_time_ms(
            metrics, with_noise=False
        )

    def test_timing_model_noise_bounded(self):
        metrics = OperatorMetrics(tuples_in=10_000)
        model = TimingModel(SIMULATION_CONFIG, noise_sigma=0.02)
        times = [model.execution_time_ms(metrics) for _ in range(50)]
        spread = (max(times) - min(times)) / np.mean(times)
        assert spread < 0.25

    def test_metrics_merge_accumulates(self):
        a = OperatorMetrics(pages_hit=1, tuples_in=10)
        b = OperatorMetrics(pages_hit=2, cpu_ops=5)
        a.merge(b)
        assert a.pages_hit == 3 and a.cpu_ops == 5 and a.tuples_in == 10


class TestExplain:
    def test_explain_plan_text(self, imdb_db, engine_and_planner):
        _, planner = engine_and_planner
        query = bind_sql(COUNT_QUERY, imdb_db.schema, name="count")
        text = explain_plan(planner.plan(query))
        assert "Scan" in text and "rows=" in text

    def test_explain_analyze_structure(self, imdb_db, engine_and_planner):
        engine, planner = engine_and_planner
        query = bind_sql(COUNT_QUERY, imdb_db.schema, name="count")
        result = planner.plan_with_info(query)
        execution = engine.execute(query, result.plan)
        payload = explain_analyze(result.plan, execution, result.planning_time_ms)
        assert payload["planning_time_ms"] == result.planning_time_ms
        assert payload["plan"]["children"]
        text = explain_analyze_text(result.plan, execution, result.planning_time_ms)
        assert "Execution Time" in text and "Planning Time" in text
