"""Tests for spec-based database construction: DatabaseSpec, registry, dispatch."""

import json
import multiprocessing
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.catalog.datagen import generate_synthetic
from repro.catalog.factories import (
    build_from_spec,
    database_factory,
    register_database_factory,
    registered_generators,
)
from repro.catalog.imdb import generate_imdb
from repro.config import SIMULATION_CONFIG, RuntimeConfig
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.splits import DatasetSplit, SplitSampling
from repro.errors import CatalogError, ExperimentError, StorageError, WorkloadError
from repro.runtime.parallel import ParallelExperimentRunner, execute_spec_payload
from repro.storage.registry import DatabaseRegistry, get_process_registry, resolve_database
from repro.storage.spec import DatabaseSpec
from repro.workloads import build_workload, is_registered_workload, registered_workloads

SYNTH = DatabaseSpec.create("synthetic", scale=0.2, seed=5, config=SIMULATION_CONFIG)


def _fingerprint_in_child(spec: DatabaseSpec) -> str:
    """Module-level so a spawn-started interpreter can import and run it."""
    return spec.fingerprint()


def _build_digest_in_child(spec: DatabaseSpec) -> str:
    """Fingerprint of the actual table bytes a fresh process builds."""
    database = spec.build()
    import hashlib

    digest = hashlib.sha256()
    for tname in database.table_names():
        data = database.table_data(tname)
        for cname in sorted(data.columns):
            digest.update(cname.encode())
            digest.update(np.ascontiguousarray(data.column(cname)).tobytes())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# DatabaseSpec value semantics and fingerprints
# ---------------------------------------------------------------------------


class TestDatabaseSpec:
    def test_create_canonicalizes_param_order(self):
        a = DatabaseSpec.create("imdb-half", title_fraction=0.5, sample_seed=7)
        b = DatabaseSpec.create("imdb-half", sample_seed=7, title_fraction=0.5)
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_invalid_specs_rejected(self):
        with pytest.raises(StorageError):
            DatabaseSpec.create("")
        with pytest.raises(StorageError):
            DatabaseSpec.create("imdb", scale=0.0)
        with pytest.raises(StorageError):
            DatabaseSpec.create("imdb", tables={"a": 1})  # non-scalar param

    def test_equal_specs_equal_fingerprints(self):
        assert SYNTH.fingerprint() == DatabaseSpec.create(
            "synthetic", scale=0.2, seed=5, config=SIMULATION_CONFIG
        ).fingerprint()

    def test_any_field_change_new_fingerprint(self):
        base = SYNTH
        variants = [
            base.with_scale(0.4),
            base.with_seed(6),
            base.with_config(None),
            base.with_config(SIMULATION_CONFIG.with_overrides(work_mem=2 * SIMULATION_CONFIG.work_mem)),
            DatabaseSpec.create("imdb", scale=0.2, seed=5, config=SIMULATION_CONFIG),
            DatabaseSpec.create("synthetic", scale=0.2, seed=5, config=SIMULATION_CONFIG, fanout=4.0),
        ]
        fingerprints = [base.fingerprint()] + [v.fingerprint() for v in variants]
        assert len(set(fingerprints)) == len(fingerprints)

    def test_fingerprint_stable_across_processes(self):
        """The digest must not depend on per-process ``hash()`` salting."""
        ctx = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
            child = pool.submit(_fingerprint_in_child, SYNTH).result()
        assert child == SYNTH.fingerprint()

    def test_pickled_spec_is_tiny(self):
        assert len(pickle.dumps(SYNTH)) < 10 * 1024

    def test_describe_names_generator_and_scale(self):
        text = SYNTH.describe()
        assert "synthetic" in text and "scale=0.2" in text


# ---------------------------------------------------------------------------
# Factories and deterministic rebuilds
# ---------------------------------------------------------------------------


class TestFactories:
    def test_bundled_generators_registered(self):
        assert {"imdb", "imdb-half", "stack", "synthetic"} <= set(registered_generators())

    def test_unknown_generator_raises(self):
        with pytest.raises(CatalogError):
            database_factory("no-such-db")
        with pytest.raises(CatalogError):
            DatabaseSpec.create("no-such-db").build()

    def test_duplicate_registration_rejected_unless_overwritten(self):
        with pytest.raises(CatalogError):
            register_database_factory("synthetic", generate_synthetic)
        register_database_factory("synthetic", generate_synthetic, overwrite=True)

    def test_built_database_carries_its_spec(self):
        database = build_from_spec(SYNTH)
        assert database.spec == SYNTH
        reconfigured = database.with_config(SIMULATION_CONFIG.with_overrides(geqo=False))
        assert reconfigured.spec is not None
        assert reconfigured.spec.config.geqo is False

    def test_rebuild_is_deterministic_across_processes(self):
        """A spawn-started interpreter rebuilds bit-identical table data."""
        ctx = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
            child_digest = pool.submit(_build_digest_in_child, SYNTH).result()
        assert child_digest == _build_digest_in_child(SYNTH)

    def test_spec_params_forwarded_to_generator(self):
        narrow = DatabaseSpec.create("synthetic", scale=0.2, seed=5, fanout=2.0).build()
        wide = DatabaseSpec.create("synthetic", scale=0.2, seed=5, fanout=16.0).build()
        assert wide.table_data("fact").row_count > narrow.table_data("fact").row_count


# ---------------------------------------------------------------------------
# DatabaseRegistry: memoization, LRU, build-once under concurrency
# ---------------------------------------------------------------------------


class TestDatabaseRegistry:
    def test_build_once_then_reuse(self):
        registry = DatabaseRegistry(max_entries=4)
        first = registry.get(SYNTH)
        second = registry.get(SYNTH)
        assert first is second
        assert registry.stats.builds == 1 and registry.stats.hits == 1
        assert len(registry) == 1

    def test_distinct_specs_distinct_instances(self):
        registry = DatabaseRegistry(max_entries=4)
        a = registry.get(SYNTH)
        b = registry.get(SYNTH.with_seed(6))
        assert a is not b
        assert registry.stats.builds == 2

    def test_lru_eviction(self):
        registry = DatabaseRegistry(max_entries=2)
        registry.get(SYNTH)
        registry.get(SYNTH.with_seed(6))
        registry.get(SYNTH)  # refresh SYNTH so seed=6 is the LRU entry
        registry.get(SYNTH.with_seed(7))  # evicts seed=6
        assert registry.stats.evictions == 1
        assert registry.contains(SYNTH) and not registry.contains(SYNTH.with_seed(6))

    def test_invalid_capacity_rejected(self):
        with pytest.raises(StorageError):
            DatabaseRegistry(max_entries=0)

    def test_concurrent_access_builds_once(self):
        """Many threads racing on the same spec must trigger exactly one build."""
        builds: list[int] = []
        build_lock = threading.Lock()

        def counting_factory(scale, seed, config, **params):
            with build_lock:
                builds.append(1)
            return generate_synthetic(scale=scale, seed=seed, config=config, **params)

        register_database_factory("counting-synthetic", counting_factory, overwrite=True)
        registry = DatabaseRegistry(max_entries=2)
        spec = DatabaseSpec.create("counting-synthetic", scale=0.2, seed=1)
        barrier = threading.Barrier(8)
        results: list[object] = []

        def worker():
            barrier.wait()
            results.append(registry.get(spec))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(builds) == 1
        assert len({id(db) for db in results}) == 1
        assert registry.stats.builds == 1 and registry.stats.hits == 7

    def test_concurrent_distinct_specs_build_in_parallel(self):
        registry = DatabaseRegistry(max_entries=4)
        specs = [SYNTH.with_seed(seed) for seed in (21, 22, 23)]
        threads = [threading.Thread(target=registry.get, args=(s,)) for s in specs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.stats.builds == 3 and len(registry) == 3

    def test_resolve_database_passthrough_and_spec(self):
        database = generate_synthetic(scale=0.2, seed=5)
        assert resolve_database(database) is database
        via_spec = resolve_database(SYNTH)
        assert via_spec.name == "synthetic"
        assert resolve_database(SYNTH) is via_spec  # process registry memoizes
        assert get_process_registry().contains(SYNTH)


# ---------------------------------------------------------------------------
# Workload factories (worker-side rebuild by name)
# ---------------------------------------------------------------------------


class TestWorkloadFactories:
    def test_bundled_workloads_registered(self):
        assert {"job", "stack", "ext_job"} <= set(registered_workloads())
        assert is_registered_workload("job") and not is_registered_workload("nope")

    def test_build_workload_by_name(self, imdb_db):
        workload = build_workload("job", imdb_db.schema)
        assert workload.name == "job" and len(workload) > 0

    def test_unknown_workload_raises(self, imdb_db):
        with pytest.raises(WorkloadError):
            build_workload("no-such-workload", imdb_db.schema)


# ---------------------------------------------------------------------------
# Spec dispatch through the experiment runtime
# ---------------------------------------------------------------------------


def _json(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def small_imdb_spec():
    return DatabaseSpec.create("imdb", scale=0.25, seed=7, config=SIMULATION_CONFIG)


@pytest.fixture(scope="module")
def spec_runner_parts(small_imdb_spec):
    database = get_process_registry().get(small_imdb_spec)
    workload = build_workload("job", database.schema)
    split = DatasetSplit(
        workload_name=workload.name,
        sampling=SplitSampling.RANDOM,
        split_index=0,
        train_ids=("1a", "2a", "3a"),
        test_ids=("1b", "2b"),
    )
    return database, workload, split


class TestSpecDispatch:
    def test_runner_accepts_spec_and_memoizes(self, small_imdb_spec, spec_runner_parts):
        database, workload, _ = spec_runner_parts
        runner = ParallelExperimentRunner(small_imdb_spec, workload)
        assert runner.database is database  # same registry instance, no rebuild
        assert runner.uses_spec_dispatch

    def test_experiment_runner_accepts_spec(self, small_imdb_spec, spec_runner_parts):
        _, workload, split = spec_runner_parts
        runner = ExperimentRunner(
            small_imdb_spec,
            workload,
            experiment_config=ExperimentConfig(deterministic_timing=True),
        )
        result = runner.run_method("postgres", split)
        assert result.method == "postgres"

    def test_payload_is_scale_independent_and_small(self, small_imdb_spec, spec_runner_parts):
        _, workload, split = spec_runner_parts
        sizes = {}
        for scale in (0.25, 1.0):
            runner = ParallelExperimentRunner(
                small_imdb_spec.with_scale(scale),
                workload,
                runtime_config=RuntimeConfig(workers=2, executor_kind="process"),
            )
            task = runner.tasks_for(("postgres",), [split])[0]
            sizes[scale] = len(pickle.dumps(runner.spec_payload(task)))
        assert all(size < 10 * 1024 for size in sizes.values())
        assert sizes[0.25] == sizes[1.0]

    def test_specless_database_has_no_spec_dispatch(self, spec_runner_parts):
        _, workload, split = spec_runner_parts
        database = generate_imdb(scale=0.25, seed=7, config=SIMULATION_CONFIG)
        runner = ParallelExperimentRunner(database, workload)
        assert not runner.uses_spec_dispatch
        with pytest.raises(ExperimentError):
            runner.spec_payload(runner.tasks_for(("postgres",), [split])[0])

    def test_modified_workload_under_registered_name_rejected(
        self, small_imdb_spec, spec_runner_parts
    ):
        """A hand-built workload sharing a registered name must not be silently
        replaced by the canonical rebuild in workers — it is rejected instead."""
        _, workload, split = spec_runner_parts
        lookalike = workload.subset(["1a", "1b", "2a", "2b", "3a"], name="job")
        runner = ParallelExperimentRunner(
            small_imdb_spec,
            lookalike,
            runtime_config=RuntimeConfig(workers=2, executor_kind="process"),
        )
        assert runner.uses_spec_dispatch  # name-registered, so payloads build...
        payload = runner.spec_payload(runner.tasks_for(("postgres",), [split])[0])
        with pytest.raises(ExperimentError, match="fingerprint mismatch"):
            execute_spec_payload(payload)  # ...but the worker-side guard refuses

    def test_worker_workload_rebuilt_once_per_process(
        self, small_imdb_spec, spec_runner_parts, monkeypatch
    ):
        """Task 2..N of a grid must reuse the worker's memoized workload."""
        from repro.runtime import parallel

        _, workload, split = spec_runner_parts
        runner = ParallelExperimentRunner(
            small_imdb_spec,
            workload,
            experiment_config=ExperimentConfig(deterministic_timing=True),
            runtime_config=RuntimeConfig(workers=2, executor_kind="process"),
        )
        payloads = [
            runner.spec_payload(task)
            for task in runner.tasks_for(("postgres",), [split], repeats=2)
        ]
        parallel._WORKER_WORKLOADS.clear()
        rebuilds: list[int] = []
        real_build = parallel.build_workload
        monkeypatch.setattr(
            parallel,
            "build_workload",
            lambda *args: rebuilds.append(1) or real_build(*args),
        )
        for payload in payloads:  # run worker entry point in-process
            parallel.execute_spec_payload(payload)
        assert len(rebuilds) == 1

    def test_worker_rebuild_in_spawned_process_identical(self, small_imdb_spec, spec_runner_parts):
        """A cold interpreter (empty registry) rebuilds and matches exactly."""
        _, workload, split = spec_runner_parts
        runner = ParallelExperimentRunner(
            small_imdb_spec,
            workload,
            experiment_config=ExperimentConfig(deterministic_timing=True),
            runtime_config=RuntimeConfig(workers=2, executor_kind="process"),
        )
        task = runner.tasks_for(("postgres",), [split])[0]
        ctx = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
            remote = pool.submit(execute_spec_payload, runner.spec_payload(task)).result()
        assert _json(remote) == _json(runner.run_task(task))
