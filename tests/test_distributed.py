"""Tests for the distributed runtime: sharded store, work queues, queue workers.

The heavyweight end-to-end tests launch real ``python -m repro.runtime.worker``
processes — against a queue directory on the test's tmp filesystem (the file
transport) and against a coordinator-side TCP queue server with workers
running out of isolated directories that share nothing with the coordinator
(the network transport).
"""

import json
import multiprocessing
import os
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.config import SIMULATION_CONFIG, RuntimeConfig
from repro.core.experiment import ExperimentConfig
from repro.core.metrics import MethodRunResult, QueryTiming
from repro.core.splits import DatasetSplit, SplitSampling
from repro.errors import ExperimentError
from repro.experiments.common import distributed_runtime
from repro.runtime.netqueue import NetWorkQueue, QueueServer
from repro.runtime.parallel import ParallelExperimentRunner, reconcile_failed_tasks
from repro.runtime.result_store import ResultStore, ShardedResultStore, TaskKey
from repro.runtime.workqueue import (
    QueueTransport,
    ResultUpload,
    WorkerQueueTransport,
    WorkQueue,
    parse_queue_url,
)
from repro.storage.registry import get_process_registry
from repro.storage.spec import DatabaseSpec
from repro.workloads import build_workload

GRID_METHODS = ("postgres", "bao")

#: Queue transports the end-to-end sweeps are exercised over.
TRANSPORTS = ("file", "tcp")


def sweep_runtime(tmp_path, transport, **overrides):
    """A distributed RuntimeConfig on the requested queue transport."""
    return distributed_runtime(
        tmp_path / "store",
        queue_url="tcp://127.0.0.1:0" if transport == "tcp" else None,
        **overrides,
    )

GRID_CONFIG = ExperimentConfig(
    optimizer_kwargs={"bao": {"training_passes": 1}},
    deterministic_timing=True,
)


def run_result_as_json(result: MethodRunResult) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def _sample_result(method: str = "postgres") -> MethodRunResult:
    return MethodRunResult(
        method=method,
        split_name="random-0",
        workload_name="job",
        training_time_s=0.5,
        executed_training_plans=3,
        timings=[
            QueryTiming(
                query_id="1a",
                method=method,
                inference_time_ms=0.0,
                planning_time_ms=1.0,
                execution_time_ms=10.0,
                timed_out=False,
                num_joins=2,
            )
        ],
    )


def _spec_grid_parts(scale: float = 0.2):
    spec = DatabaseSpec.create("imdb", scale=scale, seed=7, config=SIMULATION_CONFIG)
    database = get_process_registry().get(spec)
    workload = build_workload("job", database.schema)
    split = DatasetSplit(
        workload_name=workload.name,
        sampling=SplitSampling.RANDOM,
        split_index=0,
        train_ids=("1a", "2a", "3a"),
        test_ids=("1b", "2b"),
    )
    return spec, workload, split


# ---------------------------------------------------------------------------
# Sharded result store
# ---------------------------------------------------------------------------


class TestShardedResultStore:
    def test_round_trip_routes_into_shard_directories(self, tmp_path):
        store = ShardedResultStore(tmp_path / "sharded", shard_count=4)
        keys = [TaskKey("job", f"random-{i}", method, seed=i) for i in range(4)
                for method in ("postgres", "bao")]
        for key in keys:
            store.save(key, _sample_result(key.method), context_fingerprint="ctx")
        for key in keys:
            assert store.exists(key, "ctx")
            assert store.load(key, "ctx").method == key.method
            relative = store.path_for(key, "ctx").relative_to(store.root)
            assert relative.parts[0].startswith("shard-")
            assert store.shard_of(key) == key.shard_index(4)
        assert sum(1 for _ in store.completed_files()) == len(keys)
        assert "4 shards" in store.describe()

    def test_shard_assignment_is_stable(self):
        key = TaskKey("job", "random-0", "postgres", seed=3)
        assert key.shard_index(8) == key.shard_index(8)
        assert 0 <= key.shard_index(8) < 8
        # Different keys spread over more than one shard.
        shards = {TaskKey("job", f"s-{i}", "postgres").shard_index(8) for i in range(32)}
        assert len(shards) > 1

    def test_manifest_validates_shard_count(self, tmp_path):
        ShardedResultStore(tmp_path / "store", shard_count=4)
        reopened = ShardedResultStore(tmp_path / "store", shard_count=4)
        assert reopened.manifest()["shard_count"] == 4
        with pytest.raises(ExperimentError):
            ShardedResultStore(tmp_path / "store", shard_count=8)

    def test_refresh_manifest_records_context_fingerprints(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shard_count=2)
        store.save(TaskKey("job", "s", "postgres"), _sample_result(), "ctx-a")
        store.save(TaskKey("job", "s", "bao"), _sample_result("bao"), "ctx-b")
        manifest = store.refresh_manifest()
        assert manifest["shard_count"] == 2
        assert manifest["context_fingerprints"] == ["ctx-a", "ctx-b"]

    def test_merge_produces_flat_store_with_identical_bytes(self, tmp_path):
        store = ShardedResultStore(tmp_path / "sharded", shard_count=4)
        keys = [TaskKey("job", f"random-{i}", "postgres", seed=i) for i in range(6)]
        for key in keys:
            store.save(key, _sample_result(), context_fingerprint=f"ctx-{key.seed}")
        store.save_artifact("summary", {"rows": 6})

        flat = store.merge(tmp_path / "flat")
        assert type(flat) is ResultStore
        for key in keys:
            fingerprint = f"ctx-{key.seed}"
            assert flat.exists(key, fingerprint)
            assert flat.load(key, fingerprint).to_dict() == _sample_result().to_dict()
            sharded_bytes = store.path_for(key, fingerprint).read_bytes()
            assert flat.path_for(key, fingerprint).read_bytes() == sharded_bytes
        assert flat.load_artifact("summary") == {"rows": 6}
        # The merged layout is flat: no shard directories.
        assert not list(flat.root.glob("shard-*"))

    def test_compact_folds_shards_in_place(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shard_count=3)
        keys = [TaskKey("job", "s", m, seed=i) for i, m in enumerate(("postgres", "bao", "neo"))]
        for key in keys:
            store.save(key, _sample_result(key.method), "ctx")
        flat = store.compact()
        assert not list(flat.root.glob("shard-*"))
        assert not (flat.root / "manifest.json").exists()
        for key in keys:
            assert flat.load(key, "ctx").method == key.method

    def test_clear_preserves_artifacts_and_manifest(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shard_count=2)
        store.save(TaskKey("job", "s", "postgres"), _sample_result(), "ctx")
        store.save_artifact("table", [1, 2, 3])
        assert store.clear() == 1
        assert store.load_artifact("table") == [1, 2, 3]
        assert store.manifest()["shard_count"] == 2

    def test_stale_tmp_file_ignored_in_shard(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shard_count=2)
        key = TaskKey("job", "random-0", "postgres")
        directory = store.path_for(key).parent
        directory.mkdir(parents=True)
        (directory / "postgres-seed0.abc123.tmp").write_text("{partial")
        assert not store.exists(key)


# ---------------------------------------------------------------------------
# Concurrent writers (satellite: _atomic_write under contention)
# ---------------------------------------------------------------------------


def _hammer_store(store_kind: str, root: str, writes: int) -> None:
    """Child-process body: repeatedly save the same key into a shared store."""
    if store_kind == "sharded":
        store = ShardedResultStore(root, shard_count=4)
    else:
        store = ResultStore(root)
    key = TaskKey("job", "random-0", "postgres", seed=1)
    for _ in range(writes):
        store.save(key, _sample_result(), context_fingerprint="ctx")


class TestConcurrentWriters:
    @pytest.mark.parametrize("store_kind", ["flat", "sharded"])
    def test_two_processes_saving_same_key_leave_valid_json(self, tmp_path, store_kind):
        """Two processes race 50 saves each on one key: the surviving file must
        be valid JSON and round-trip, never a torn mix of both writers."""
        root = str(tmp_path / store_kind)
        context = multiprocessing.get_context("fork")
        procs = [
            context.Process(target=_hammer_store, args=(store_kind, root, 50))
            for _ in range(2)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        store = (
            ShardedResultStore(root, shard_count=4) if store_kind == "sharded" else ResultStore(root)
        )
        key = TaskKey("job", "random-0", "postgres", seed=1)
        payload = json.loads(store.path_for(key, "ctx").read_text())
        assert payload["context_fingerprint"] == "ctx"
        assert store.load(key, "ctx").to_dict() == _sample_result().to_dict()
        # No .tmp leftovers: every temp file was renamed or cleaned up.
        assert not list(store.root.rglob("*.tmp"))


# ---------------------------------------------------------------------------
# Work queue
# ---------------------------------------------------------------------------


class TestWorkQueue:
    def test_enqueue_claim_ack_lifecycle(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_timeout_s=30)
        queue.enqueue("t-0", {"payload": 1})
        queue.enqueue("t-1", {"payload": 2})
        assert queue.pending_ids() == {"t-0", "t-1"}

        claim = queue.claim("worker-a")
        assert claim is not None and claim.task_id == "t-0"
        assert claim.payload == {"payload": 1}
        assert queue.claimed_ids() == {"t-0"}

        queue.ack(claim, "worker-a")
        assert queue.done_ids() == {"t-0"}
        assert queue.claimed_ids() == set()
        assert queue.stats().describe() == "1 pending, 0 claimed, 1 done, 0 failed"

    def test_claim_is_exclusive(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue("only", "task")
        first = queue.claim("a")
        second = queue.claim("b")
        assert first is not None and second is None

    def test_requeue_expired_returns_dead_claims(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_timeout_s=0.05)
        queue.enqueue("t-0", "task")
        claim = queue.claim("doomed")
        assert claim is not None
        time.sleep(0.1)  # lease expires: the claimer never heart-beats
        assert queue.requeue_expired() == ["t-0"]
        assert queue.pending_ids() == {"t-0"}
        revived = queue.claim("survivor")
        assert revived is not None and revived.payload == "task"

    def test_renew_keeps_lease_alive(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_timeout_s=0.2)
        queue.enqueue("t-0", "task")
        claim = queue.claim("steady")
        for _ in range(3):
            time.sleep(0.1)
            queue.renew(claim)
        assert queue.requeue_expired() == []
        assert queue.has_live_claims()

    def test_fail_marker_carries_error(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue("t-0", "task")
        claim = queue.claim("w")
        queue.fail(claim, "w", "ValueError: boom")
        assert queue.failed_tasks() == {"t-0": "ValueError: boom"}
        assert queue.claimed_ids() == set()

    def test_reset_reconciles_a_reused_queue_directory(self, tmp_path):
        """A crashed sweep's leftovers (orphan tasks, stale markers, stop
        sentinel) must not leak into the next sweep."""
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue("old-0", "task")
        queue.enqueue("old-1", "task")
        claim = queue.claim("w")
        queue.enqueue("old-2", "task")
        done = queue.claim("w")
        queue.ack(done, "w")
        queue.fail(queue.claim("w"), "w", "boom")
        queue.write_stop()
        assert claim is not None
        assert queue.reset() == 3  # 1 claimed + 1 done marker + 1 failed marker
        assert queue.pending_ids() == queue.claimed_ids() == set()
        assert queue.done_ids() == set() and queue.failed_tasks() == {}
        assert not queue.stop_requested()

    def test_reset_removes_tmp_orphans_of_crashed_atomic_writes(self, tmp_path):
        """`.tmp` leftovers in pending/ and done/ (a crash between mkstemp and
        rename) used to survive reset() forever; they must be swept too."""
        queue = WorkQueue(tmp_path / "q")
        (queue.root / "pending" / "t-0.task.abc123.tmp").write_text("{partial")
        (queue.root / "done" / "t-1.xyz789.tmp").write_text("{partial")
        queue.enqueue("t-2", "task")
        assert queue.reset() == 3  # both orphans + the pending task
        assert not list(queue.root.rglob("*.tmp"))
        assert queue.pending_ids() == set()

    def test_stats_failed_count_never_parses_marker_files(self, tmp_path, monkeypatch):
        """stats() is polled continuously by the coordinator: it must count
        failed/ directory entries, not read+JSON-parse every marker (that is
        failed_tasks()'s job, reserved for error reporting)."""
        queue = WorkQueue(tmp_path / "q")
        for index in range(2):
            queue.enqueue(f"t-{index}", "task")
            queue.fail(queue.claim("w"), "w", "boom")

        def _must_not_be_called(self):
            raise AssertionError("stats() must not parse failure markers")

        monkeypatch.setattr(WorkQueue, "failed_tasks", _must_not_be_called)
        assert queue.stats().failed == 2
        assert queue.stats().describe() == "0 pending, 0 claimed, 0 done, 2 failed"

    def test_discard_failure_clears_marker(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue("t-0", "task")
        queue.fail(queue.claim("w"), "w", "boom")
        assert queue.discard_failure("t-0")
        assert queue.failed_tasks() == {}
        assert not queue.discard_failure("t-0")  # already gone

    def test_stop_sentinel(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        assert not queue.stop_requested()
        queue.write_stop()
        assert queue.stop_requested()
        queue.clear_stop()
        assert not queue.stop_requested()

    def test_unsafe_task_id_rejected(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        with pytest.raises(ExperimentError):
            queue.enqueue("../escape", "task")

    def test_nonpositive_lease_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            WorkQueue(tmp_path / "q", lease_timeout_s=0)

    def test_implements_queue_transport_protocol(self, tmp_path):
        assert isinstance(WorkQueue(tmp_path / "q"), QueueTransport)
        assert isinstance(WorkQueue(tmp_path / "q"), WorkerQueueTransport)
        assert WorkQueue(tmp_path / "q").wants_results is False


class TestLeaseClockSkew:
    """Lease ages must come from the filesystem's clock, not the coordinator's
    wall clock: with cross-host skew larger than the lease timeout, the old
    `time.time()` comparison re-queued live claims or kept dead ones forever."""

    def test_live_claim_survives_coordinator_clock_running_ahead(self, tmp_path, monkeypatch):
        queue = WorkQueue(tmp_path / "q", lease_timeout_s=30)
        queue.enqueue("t-0", "task")
        assert queue.claim("live-worker") is not None
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() + 3600)
        # Old behaviour: age = skewed_now - mtime = ~1 h > 30 s -> spurious re-queue.
        assert queue.requeue_expired() == []
        assert queue.claimed_ids() == {"t-0"}
        assert queue.has_live_claims()

    def test_dead_claim_expires_despite_coordinator_clock_running_behind(
        self, tmp_path, monkeypatch
    ):
        queue = WorkQueue(tmp_path / "q", lease_timeout_s=5)
        queue.enqueue("t-0", "task")
        claim = queue.claim("doomed-worker")
        # The worker died a minute ago by the filesystem's clock.
        stale = queue.filesystem_now() - 60
        os.utime(claim.path, times=(stale, stale))
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() - 3600)
        # Old behaviour: age = skewed_now - mtime < 0 -> the lease never expires.
        assert not queue.has_live_claims()
        assert queue.requeue_expired() == ["t-0"]
        assert queue.pending_ids() == {"t-0"}

    def test_filesystem_now_tracks_claim_mtimes(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_timeout_s=30)
        queue.enqueue("t-0", "task")
        claim = queue.claim("w")
        # Probe and claim are stamped by the same clock: ages are near zero.
        assert abs(queue.filesystem_now() - claim.path.stat().st_mtime) < 5.0


class TestTaskRetries:
    """One transient task failure must not abort a multi-hour sweep: the
    coordinator re-queues failed tasks up to RuntimeConfig.task_retries times,
    and the final error reports the attempt count."""

    @pytest.fixture(params=TRANSPORTS)
    def retry_queue(self, request, tmp_path):
        if request.param == "file":
            yield WorkQueue(tmp_path / "q")
        else:
            server = QueueServer(lease_timeout_s=30)
            yield server
            server.close()

    @staticmethod
    def _fail_once(queue, error="TransientError: boom"):
        queue.enqueue("t-0", "payload")
        queue.fail(queue.claim("w"), "w", error)

    def test_failed_task_requeued_within_budget(self, retry_queue):
        self._fail_once(retry_queue)
        retries_used: dict[str, int] = {}
        retried = reconcile_failed_tasks(
            retry_queue, {"t-0"}, {"t-0": "payload"}, retries_used, task_retries=1
        )
        assert retried == ["t-0"]
        assert retries_used == {"t-0": 1}
        assert retry_queue.failed_tasks() == {}  # marker discarded
        revived = retry_queue.claim("second-worker")  # and claimable again
        assert revived is not None and revived.payload == "payload"

    def test_exhausted_budget_raises_with_attempt_count(self, retry_queue):
        self._fail_once(retry_queue)
        retries_used: dict[str, int] = {}
        reconcile_failed_tasks(retry_queue, {"t-0"}, {"t-0": "payload"}, retries_used, 1)
        retry_queue.fail(retry_queue.claim("w"), "w", "TransientError: boom again")
        with pytest.raises(ExperimentError, match=r"failed after 2 attempt"):
            reconcile_failed_tasks(retry_queue, {"t-0"}, {"t-0": "payload"}, retries_used, 1)

    def test_zero_retries_fails_on_first_marker(self, retry_queue):
        self._fail_once(retry_queue)
        with pytest.raises(ExperimentError, match=r"failed after 1 attempt"):
            reconcile_failed_tasks(retry_queue, {"t-0"}, {"t-0": "payload"}, {}, task_retries=0)

    def test_failures_of_finished_tasks_are_ignored(self, retry_queue):
        """A marker for a task no longer in `remaining` (finished on retry by
        another worker) must not trip the reconciliation."""
        self._fail_once(retry_queue)
        assert reconcile_failed_tasks(retry_queue, set(), {}, {}, task_retries=0) == []


# ---------------------------------------------------------------------------
# TCP transport (netqueue)
# ---------------------------------------------------------------------------


class TestNetQueue:
    def test_lifecycle_persists_uploaded_results_coordinator_side(self, tmp_path):
        """enqueue -> claim -> renew -> ack-with-result over a real socket; the
        uploaded result must land in the coordinator's local store exactly as
        a shared-store save would have written it."""
        store = ResultStore(tmp_path / "store")
        server = QueueServer(lease_timeout_s=30, result_store=store)
        try:
            client = NetWorkQueue(server.url)
            server.enqueue("t-0", {"n": 0})
            server.enqueue("t-1", {"n": 1})
            claim = client.claim("worker-a")
            assert claim is not None and claim.task_id == "t-0"
            assert claim.payload == {"n": 0}
            assert server.stats().describe() == "1 pending, 1 claimed, 0 done, 0 failed"
            client.renew(claim)

            key = TaskKey("job", "random-0", "postgres", seed=1)
            result = _sample_result()
            client.ack(
                claim,
                "worker-a",
                ResultUpload(key=key, fingerprint="ctx", result=result.to_dict()),
            )
            assert server.done_ids() == {"t-0"}
            assert store.load(key, "ctx").to_dict() == result.to_dict()
            # Byte-parity with a direct save of the same result.
            reference = ResultStore(tmp_path / "reference")
            reference.save(key, result, "ctx")
            assert (
                store.path_for(key, "ctx").read_bytes()
                == reference.path_for(key, "ctx").read_bytes()
            )

            second = client.claim("worker-a")
            client.fail(second, "worker-a", "ValueError: boom")
            assert server.failed_tasks() == {"t-1": "ValueError: boom"}
            assert not client.stop_requested()
            server.write_stop()
            assert client.stop_requested()
        finally:
            server.close()

    def test_claim_is_exclusive_and_expired_lease_is_requeued(self):
        server = QueueServer(lease_timeout_s=0.05)
        try:
            client = NetWorkQueue(server.url)
            server.enqueue("only", "task")
            first = client.claim("a")
            assert first is not None
            assert client.claim("b") is None  # exclusive
            time.sleep(0.1)  # the claimer never renews: lease expires
            assert server.requeue_expired() == ["only"]
            assert not server.has_live_claims()
            revived = client.claim("b")
            assert revived is not None and revived.payload == "task"
        finally:
            server.close()

    def test_renew_keeps_server_side_lease_alive(self):
        server = QueueServer(lease_timeout_s=0.2)
        try:
            client = NetWorkQueue(server.url)
            server.enqueue("t-0", "task")
            claim = client.claim("steady")
            for _ in range(3):
                time.sleep(0.1)
                client.renew(claim)
            assert server.requeue_expired() == []
            assert server.has_live_claims()
        finally:
            server.close()

    def test_zombie_ack_after_requeue_wins(self, tmp_path):
        """A worker that outlives its lease may ack a task that was already
        re-queued: the (identical) result wins and the duplicate is dropped."""
        store = ResultStore(tmp_path / "store")
        server = QueueServer(lease_timeout_s=0.05, result_store=store)
        try:
            client = NetWorkQueue(server.url)
            server.enqueue("t-0", "task")
            zombie = client.claim("zombie")
            time.sleep(0.1)
            assert server.requeue_expired() == ["t-0"]  # back in pending
            key = TaskKey("job", "s", "postgres")
            client.ack(zombie, "zombie", ResultUpload(key, "ctx", _sample_result().to_dict()))
            assert server.done_ids() == {"t-0"}
            assert server.pending_ids() == set()  # duplicate dropped
            assert store.exists(key, "ctx")
        finally:
            server.close()

    def test_ack_rejected_by_server_raises_and_task_stays_undone(self, tmp_path):
        """A coordinator-side persistence failure must surface to the acking
        caller (not be swallowed like a dead connection) and must not mark the
        task done — its result never reached disk."""
        store = ResultStore(tmp_path / "store")
        server = QueueServer(lease_timeout_s=30, result_store=store)
        try:
            def boom(*args, **kwargs):
                raise RuntimeError("disk full")

            store.save_raw = boom
            client = NetWorkQueue(server.url)
            server.enqueue("t-0", "task")
            claim = client.claim("w")
            upload = ResultUpload(TaskKey("job", "s", "postgres"), "ctx", {})
            with pytest.raises(ExperimentError, match="disk full"):
                client.ack(claim, "w", upload)
            assert server.done_ids() == set()
        finally:
            server.close()

    def test_worker_loop_converts_ack_rejection_into_failure_marker(self, tmp_path):
        """An ack rejection must not kill the worker process: the loop files a
        failure marker carrying the real cause and keeps draining."""
        from repro.runtime.worker import run_worker

        spec, workload, split = _spec_grid_parts()
        runner = ParallelExperimentRunner(
            spec,
            workload,
            experiment_config=GRID_CONFIG,
            runtime_config=sweep_runtime(tmp_path, "tcp", workers=1, shard_count=2),
        )
        store = runner.result_store
        server = QueueServer(lease_timeout_s=30, result_store=store)
        try:
            def boom(*args, **kwargs):
                raise RuntimeError("disk full")

            store.save_raw = boom
            task = runner.tasks_for(("postgres",), [split])[0]
            payload = replace(runner.spec_payload(task), store_root=None, store_shards=0)
            server.enqueue("t-0", payload)
            completed = run_worker(
                server.url, worker_id="w", idle_timeout_s=1.0, max_tasks=2, lease_renew_s=0.5
            )
            assert completed == 0  # the task executed but was never acked
            assert "ack rejected" in server.failed_tasks().get("t-0", "")
            assert "disk full" in server.failed_tasks()["t-0"]
            assert server.done_ids() == set()
        finally:
            server.close()

    def test_dead_server_reads_as_stop(self):
        server = QueueServer(lease_timeout_s=5)
        url = server.url
        server.close()
        client = NetWorkQueue(url, timeout_s=2.0)
        assert client.claim("w") is None
        assert client.stop_requested()

    def test_reset_clears_all_state(self):
        server = QueueServer(lease_timeout_s=30)
        try:
            server.enqueue("t-0", "a")
            server.enqueue("t-1", "b")
            claim = server.claim("w")
            server.ack(claim, "w")
            server.write_stop()
            assert server.reset() == 2  # 1 pending + 1 done
            assert server.stats().describe() == "0 pending, 0 claimed, 0 done, 0 failed"
            assert not server.stop_requested()
        finally:
            server.close()

    def test_server_implements_queue_transport_protocol(self):
        server = QueueServer(lease_timeout_s=30)
        try:
            assert isinstance(server, QueueTransport)
            assert server.wants_results is True
            client = NetWorkQueue(server.url)
            assert isinstance(client, WorkerQueueTransport)
            assert client.wants_results is True
        finally:
            server.close()

    def test_client_rejects_non_tcp_url(self):
        with pytest.raises(ExperimentError, match="tcp"):
            NetWorkQueue("file:///tmp/queue")

    def test_unknown_op_is_rejected_not_hung(self):
        server = QueueServer(lease_timeout_s=30)
        try:
            client = NetWorkQueue(server.url)
            with pytest.raises(ExperimentError, match="unknown queue op"):
                client._request({"op": "frobnicate"})
        finally:
            server.close()


class TestQueueUrlParsing:
    def test_tcp_and_file_and_bare_paths(self):
        tcp = parse_queue_url("tcp://10.0.0.5:7077")
        assert (tcp.scheme, tcp.host, tcp.port) == ("tcp", "10.0.0.5", 7077)
        assert parse_queue_url("file:///shared/q").path == "/shared/q"
        assert parse_queue_url("/shared/q").scheme == "file"

    @pytest.mark.parametrize(
        "url", ["tcp://", "tcp://host", "tcp://host:notaport", "tcp://host:70777", "nfs://x/y", "file://"]
    )
    def test_malformed_urls_rejected(self, url):
        with pytest.raises(ExperimentError):
            parse_queue_url(url)

    def test_file_url_with_remote_authority_rejected(self):
        """file://shared/sweep (two slashes) names host "shared", not the path
        /shared/sweep — silently treating it as a CWD-relative path would point
        the coordinator at the wrong local directory while remote workers drain
        the real mount."""
        with pytest.raises(ExperimentError, match="authority"):
            parse_queue_url("file://shared/sweep/queue")

    def test_file_url_localhost_authority_accepted(self):
        assert parse_queue_url("file://localhost/shared/q").path == "/shared/q"


# ---------------------------------------------------------------------------
# Distributed execution end to end
# ---------------------------------------------------------------------------


class TestDistributedRunner:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_distributed_identical_to_serial_and_merge_loads(self, tmp_path, transport):
        """2 queue workers vs serial, on each transport: byte-identical
        results, sharded layout on disk, and every task loads from the merged
        flat store under its context fingerprint (the PR's acceptance
        criterion)."""
        spec, workload, split = _spec_grid_parts()
        runner = ParallelExperimentRunner(
            spec,
            workload,
            experiment_config=GRID_CONFIG,
            runtime_config=sweep_runtime(
                tmp_path, transport, workers=2, shard_count=4, lease_timeout_s=30
            ),
        )
        distributed = [run_result_as_json(r) for r in runner.run_grid(GRID_METHODS, [split])]

        serial = ParallelExperimentRunner(
            spec,
            workload,
            experiment_config=GRID_CONFIG,
            runtime_config=RuntimeConfig(workers=1),
        )
        expected = [run_result_as_json(r) for r in serial.run_grid(GRID_METHODS, [split])]
        assert distributed == expected

        store = runner.result_store
        assert isinstance(store, ShardedResultStore)
        stored = list(store.completed_files())
        assert len(stored) == len(GRID_METHODS)
        assert all(p.relative_to(store.root).parts[0].startswith("shard-") for p in stored)
        assert store.manifest()["context_fingerprints"]  # refreshed by the coordinator
        if transport == "tcp":
            # No shared queue directory exists, and every result was persisted
            # by the coordinator from worker uploads, not by the workers.
            assert not (store.root / "queue").exists()
            assert store.stored_count == len(GRID_METHODS)
        else:
            # File transport: the workers wrote the shared store themselves.
            assert store.stored_count == 0

        merged = store.merge(tmp_path / "merged")
        for task in runner.tasks_for(GRID_METHODS, [split]):
            key, fingerprint = runner.task_key(task), runner.task_fingerprint(task)
            assert merged.exists(key, fingerprint)
            merged.load(key, fingerprint)  # raises on fingerprint mismatch

    def test_dead_worker_claim_is_requeued_and_finished(self, tmp_path):
        """A claim whose worker died (claimed, never heart-beaten) must expire
        and be finished by a surviving worker, byte-identical to serial."""
        spec, workload, split = _spec_grid_parts()
        runner = ParallelExperimentRunner(
            spec,
            workload,
            experiment_config=GRID_CONFIG,
            runtime_config=distributed_runtime(
                tmp_path / "store", workers=1, shard_count=2, lease_timeout_s=1.0
            ),
        )
        tasks = runner.tasks_for(GRID_METHODS, [split])
        queue = WorkQueue(runner.result_store.root / "queue", lease_timeout_s=1.0)
        for index, task in enumerate(tasks):
            queue.enqueue(f"t-{index}", runner.spec_payload(task))
        # Simulate a worker that claimed a task and was then SIGKILLed: the
        # claim exists but its heartbeat never advances.
        doomed = queue.claim("doomed-worker")
        assert doomed is not None

        proc = runner._spawn_worker(queue.root, 0, lease_timeout_s=1.0)
        try:
            deadline = time.monotonic() + 180
            requeued: list[str] = []
            while time.monotonic() < deadline:
                requeued += queue.requeue_expired()
                if queue.done_ids() >= {f"t-{i}" for i in range(len(tasks))}:
                    break
                assert not queue.failed_tasks()
                time.sleep(0.2)
        finally:
            queue.write_stop()
            proc.wait(timeout=60)
        assert doomed.task_id in requeued  # the dead worker's lease was re-queued
        assert queue.done_ids() >= {f"t-{i}" for i in range(len(tasks))}

        serial = ParallelExperimentRunner(
            spec, workload, experiment_config=GRID_CONFIG, runtime_config=RuntimeConfig(workers=1)
        )
        expected = serial.run_grid(GRID_METHODS, [split])
        for task, reference in zip(tasks, expected):
            stored = runner.result_store.load(runner.task_key(task), runner.task_fingerprint(task))
            assert run_result_as_json(stored) == run_result_as_json(reference)

    @staticmethod
    def _spawn_isolated_worker(url: str, island: Path, index: int) -> subprocess.Popen:
        """A real worker process whose only link to the coordinator is the TCP
        url: it runs from (and temps into) its own island directory and is
        given no path the coordinator ever reads or writes."""
        island.mkdir(parents=True, exist_ok=True)
        source_root = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(source_root)
        env["TMPDIR"] = str(island)
        command = [
            sys.executable, "-m", "repro.runtime.worker", url,
            "--worker-id", f"island-{index}", "--lease-renew", "0.25",
        ]
        with open(island / "worker.log", "ab") as log:
            return subprocess.Popen(
                command, stdout=log, stderr=subprocess.STDOUT, env=env, cwd=str(island)
            )

    def test_tcp_sweep_with_isolated_workers_survives_dead_worker(self, tmp_path):
        """TCP transport end to end with zero filesystem sharing: a worker in
        an isolated island directory drains the queue over the socket, a
        SIGKILLed worker's claim (claimed, never renewed) is re-queued
        server-side, every result is persisted coordinator-locally from the
        upload frames, and the grid is byte-identical to serial."""
        spec, workload, split = _spec_grid_parts()
        runner = ParallelExperimentRunner(
            spec,
            workload,
            experiment_config=GRID_CONFIG,
            runtime_config=sweep_runtime(tmp_path, "tcp", workers=1, shard_count=2),
        )
        store = runner.result_store
        tasks = runner.tasks_for(GRID_METHODS, [split])
        want = {f"t-{index}" for index in range(len(tasks))}
        server = QueueServer(lease_timeout_s=1.0, result_store=store)
        proc = None
        island = tmp_path / "worker-island"
        try:
            for index, task in enumerate(tasks):
                payload = replace(runner.spec_payload(task), store_root=None, store_shards=0)
                server.enqueue(f"t-{index}", payload)
            # Simulate a SIGKILLed worker: it claimed over the wire and died —
            # its lease is never renewed again.
            doomed = NetWorkQueue(server.url).claim("doomed-worker")
            assert doomed is not None

            proc = self._spawn_isolated_worker(server.url, island, 0)
            deadline = time.monotonic() + 180
            requeued: list[str] = []
            while time.monotonic() < deadline:
                requeued += server.requeue_expired()
                if server.done_ids() >= want:
                    break
                assert not server.failed_tasks()
                time.sleep(0.2)
        finally:
            server.write_stop()
            if proc is not None:
                proc.wait(timeout=60)
            server.close()
        assert doomed.task_id in requeued  # the dead worker's lease was re-queued
        assert server.done_ids() >= want
        # The island shares nothing with the coordinator: no store, no queue
        # files ever appear there — only the worker's own log.
        assert not list(island.rglob("*.json"))
        assert not list(island.rglob("*.task"))
        # Every result reached the store through the coordinator's sink.
        assert store.stored_count >= len(tasks)

        serial = ParallelExperimentRunner(
            spec, workload, experiment_config=GRID_CONFIG, runtime_config=RuntimeConfig(workers=1)
        )
        expected = serial.run_grid(GRID_METHODS, [split])
        for task, reference in zip(tasks, expected):
            stored = store.load(runner.task_key(task), runner.task_fingerprint(task))
            assert run_result_as_json(stored) == run_result_as_json(reference)

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_distributed_resume_skips_completed_tasks(self, tmp_path, transport):
        """A second distributed sweep over a fully-populated store enqueues
        nothing, spawns no workers and serves every result from disk."""
        spec, workload, split = _spec_grid_parts()

        def make_runner():
            return ParallelExperimentRunner(
                spec,
                workload,
                experiment_config=GRID_CONFIG,
                runtime_config=sweep_runtime(tmp_path, transport, workers=2, shard_count=2),
            )

        first = make_runner()
        original = [run_result_as_json(r) for r in first.run_grid(GRID_METHODS, [split])]

        second = make_runner()
        resumed = [run_result_as_json(r) for r in second.run_grid(GRID_METHODS, [split])]
        assert resumed == original
        assert second._distributed_procs == []  # nothing was queued, nobody spawned
        assert second.result_store.loaded_count == len(GRID_METHODS)

    def test_distributed_requires_result_store(self):
        spec, workload, split = _spec_grid_parts()
        runner = ParallelExperimentRunner(
            spec,
            workload,
            experiment_config=GRID_CONFIG,
            runtime_config=RuntimeConfig(workers=2, executor_kind="distributed"),
        )
        with pytest.raises(ExperimentError, match="result store"):
            runner.run_grid(GRID_METHODS, [split])

    def test_distributed_requires_spec_dispatch(self, imdb_db, job_workload, tmp_path):
        """A hand-built database (no spec) cannot ship through the queue."""
        split = DatasetSplit(
            workload_name=job_workload.name,
            sampling=SplitSampling.RANDOM,
            split_index=0,
            train_ids=("1a",),
            test_ids=("1b",),
        )
        database = imdb_db.with_config(imdb_db.config)
        database.spec = None
        runner = ParallelExperimentRunner(
            database,
            job_workload,
            experiment_config=GRID_CONFIG,
            runtime_config=distributed_runtime(tmp_path / "store", workers=2),
        )
        with pytest.raises(ExperimentError, match="spec dispatch"):
            runner.run_grid(("postgres",), [split])
