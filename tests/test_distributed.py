"""Tests for the distributed runtime: sharded store, work queue, queue workers.

The heavyweight end-to-end tests launch real ``python -m repro.runtime.worker``
processes against a queue on the test's tmp filesystem — the same moving
parts a multi-host sweep uses, minus the network filesystem.
"""

import json
import multiprocessing
import time

import pytest

from repro.config import SIMULATION_CONFIG, RuntimeConfig
from repro.core.experiment import ExperimentConfig
from repro.core.metrics import MethodRunResult, QueryTiming
from repro.core.splits import DatasetSplit, SplitSampling
from repro.errors import ExperimentError
from repro.experiments.common import distributed_runtime
from repro.runtime.parallel import ParallelExperimentRunner
from repro.runtime.result_store import ResultStore, ShardedResultStore, TaskKey
from repro.runtime.workqueue import WorkQueue
from repro.storage.registry import get_process_registry
from repro.storage.spec import DatabaseSpec
from repro.workloads import build_workload

GRID_METHODS = ("postgres", "bao")

GRID_CONFIG = ExperimentConfig(
    optimizer_kwargs={"bao": {"training_passes": 1}},
    deterministic_timing=True,
)


def run_result_as_json(result: MethodRunResult) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def _sample_result(method: str = "postgres") -> MethodRunResult:
    return MethodRunResult(
        method=method,
        split_name="random-0",
        workload_name="job",
        training_time_s=0.5,
        executed_training_plans=3,
        timings=[
            QueryTiming(
                query_id="1a",
                method=method,
                inference_time_ms=0.0,
                planning_time_ms=1.0,
                execution_time_ms=10.0,
                timed_out=False,
                num_joins=2,
            )
        ],
    )


def _spec_grid_parts(scale: float = 0.2):
    spec = DatabaseSpec.create("imdb", scale=scale, seed=7, config=SIMULATION_CONFIG)
    database = get_process_registry().get(spec)
    workload = build_workload("job", database.schema)
    split = DatasetSplit(
        workload_name=workload.name,
        sampling=SplitSampling.RANDOM,
        split_index=0,
        train_ids=("1a", "2a", "3a"),
        test_ids=("1b", "2b"),
    )
    return spec, workload, split


# ---------------------------------------------------------------------------
# Sharded result store
# ---------------------------------------------------------------------------


class TestShardedResultStore:
    def test_round_trip_routes_into_shard_directories(self, tmp_path):
        store = ShardedResultStore(tmp_path / "sharded", shard_count=4)
        keys = [TaskKey("job", f"random-{i}", method, seed=i) for i in range(4)
                for method in ("postgres", "bao")]
        for key in keys:
            store.save(key, _sample_result(key.method), context_fingerprint="ctx")
        for key in keys:
            assert store.exists(key, "ctx")
            assert store.load(key, "ctx").method == key.method
            relative = store.path_for(key, "ctx").relative_to(store.root)
            assert relative.parts[0].startswith("shard-")
            assert store.shard_of(key) == key.shard_index(4)
        assert sum(1 for _ in store.completed_files()) == len(keys)
        assert "4 shards" in store.describe()

    def test_shard_assignment_is_stable(self):
        key = TaskKey("job", "random-0", "postgres", seed=3)
        assert key.shard_index(8) == key.shard_index(8)
        assert 0 <= key.shard_index(8) < 8
        # Different keys spread over more than one shard.
        shards = {TaskKey("job", f"s-{i}", "postgres").shard_index(8) for i in range(32)}
        assert len(shards) > 1

    def test_manifest_validates_shard_count(self, tmp_path):
        ShardedResultStore(tmp_path / "store", shard_count=4)
        reopened = ShardedResultStore(tmp_path / "store", shard_count=4)
        assert reopened.manifest()["shard_count"] == 4
        with pytest.raises(ExperimentError):
            ShardedResultStore(tmp_path / "store", shard_count=8)

    def test_refresh_manifest_records_context_fingerprints(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shard_count=2)
        store.save(TaskKey("job", "s", "postgres"), _sample_result(), "ctx-a")
        store.save(TaskKey("job", "s", "bao"), _sample_result("bao"), "ctx-b")
        manifest = store.refresh_manifest()
        assert manifest["shard_count"] == 2
        assert manifest["context_fingerprints"] == ["ctx-a", "ctx-b"]

    def test_merge_produces_flat_store_with_identical_bytes(self, tmp_path):
        store = ShardedResultStore(tmp_path / "sharded", shard_count=4)
        keys = [TaskKey("job", f"random-{i}", "postgres", seed=i) for i in range(6)]
        for key in keys:
            store.save(key, _sample_result(), context_fingerprint=f"ctx-{key.seed}")
        store.save_artifact("summary", {"rows": 6})

        flat = store.merge(tmp_path / "flat")
        assert type(flat) is ResultStore
        for key in keys:
            fingerprint = f"ctx-{key.seed}"
            assert flat.exists(key, fingerprint)
            assert flat.load(key, fingerprint).to_dict() == _sample_result().to_dict()
            sharded_bytes = store.path_for(key, fingerprint).read_bytes()
            assert flat.path_for(key, fingerprint).read_bytes() == sharded_bytes
        assert flat.load_artifact("summary") == {"rows": 6}
        # The merged layout is flat: no shard directories.
        assert not list(flat.root.glob("shard-*"))

    def test_compact_folds_shards_in_place(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shard_count=3)
        keys = [TaskKey("job", "s", m, seed=i) for i, m in enumerate(("postgres", "bao", "neo"))]
        for key in keys:
            store.save(key, _sample_result(key.method), "ctx")
        flat = store.compact()
        assert not list(flat.root.glob("shard-*"))
        assert not (flat.root / "manifest.json").exists()
        for key in keys:
            assert flat.load(key, "ctx").method == key.method

    def test_clear_preserves_artifacts_and_manifest(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shard_count=2)
        store.save(TaskKey("job", "s", "postgres"), _sample_result(), "ctx")
        store.save_artifact("table", [1, 2, 3])
        assert store.clear() == 1
        assert store.load_artifact("table") == [1, 2, 3]
        assert store.manifest()["shard_count"] == 2

    def test_stale_tmp_file_ignored_in_shard(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shard_count=2)
        key = TaskKey("job", "random-0", "postgres")
        directory = store.path_for(key).parent
        directory.mkdir(parents=True)
        (directory / "postgres-seed0.abc123.tmp").write_text("{partial")
        assert not store.exists(key)


# ---------------------------------------------------------------------------
# Concurrent writers (satellite: _atomic_write under contention)
# ---------------------------------------------------------------------------


def _hammer_store(store_kind: str, root: str, writes: int) -> None:
    """Child-process body: repeatedly save the same key into a shared store."""
    if store_kind == "sharded":
        store = ShardedResultStore(root, shard_count=4)
    else:
        store = ResultStore(root)
    key = TaskKey("job", "random-0", "postgres", seed=1)
    for _ in range(writes):
        store.save(key, _sample_result(), context_fingerprint="ctx")


class TestConcurrentWriters:
    @pytest.mark.parametrize("store_kind", ["flat", "sharded"])
    def test_two_processes_saving_same_key_leave_valid_json(self, tmp_path, store_kind):
        """Two processes race 50 saves each on one key: the surviving file must
        be valid JSON and round-trip, never a torn mix of both writers."""
        root = str(tmp_path / store_kind)
        context = multiprocessing.get_context("fork")
        procs = [
            context.Process(target=_hammer_store, args=(store_kind, root, 50))
            for _ in range(2)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        store = (
            ShardedResultStore(root, shard_count=4) if store_kind == "sharded" else ResultStore(root)
        )
        key = TaskKey("job", "random-0", "postgres", seed=1)
        payload = json.loads(store.path_for(key, "ctx").read_text())
        assert payload["context_fingerprint"] == "ctx"
        assert store.load(key, "ctx").to_dict() == _sample_result().to_dict()
        # No .tmp leftovers: every temp file was renamed or cleaned up.
        assert not list(store.root.rglob("*.tmp"))


# ---------------------------------------------------------------------------
# Work queue
# ---------------------------------------------------------------------------


class TestWorkQueue:
    def test_enqueue_claim_ack_lifecycle(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_timeout_s=30)
        queue.enqueue("t-0", {"payload": 1})
        queue.enqueue("t-1", {"payload": 2})
        assert queue.pending_ids() == {"t-0", "t-1"}

        claim = queue.claim("worker-a")
        assert claim is not None and claim.task_id == "t-0"
        assert claim.payload == {"payload": 1}
        assert queue.claimed_ids() == {"t-0"}

        queue.ack(claim, "worker-a")
        assert queue.done_ids() == {"t-0"}
        assert queue.claimed_ids() == set()
        assert queue.stats().describe() == "1 pending, 0 claimed, 1 done, 0 failed"

    def test_claim_is_exclusive(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue("only", "task")
        first = queue.claim("a")
        second = queue.claim("b")
        assert first is not None and second is None

    def test_requeue_expired_returns_dead_claims(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_timeout_s=0.05)
        queue.enqueue("t-0", "task")
        claim = queue.claim("doomed")
        assert claim is not None
        time.sleep(0.1)  # lease expires: the claimer never heart-beats
        assert queue.requeue_expired() == ["t-0"]
        assert queue.pending_ids() == {"t-0"}
        revived = queue.claim("survivor")
        assert revived is not None and revived.payload == "task"

    def test_renew_keeps_lease_alive(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_timeout_s=0.2)
        queue.enqueue("t-0", "task")
        claim = queue.claim("steady")
        for _ in range(3):
            time.sleep(0.1)
            queue.renew(claim)
        assert queue.requeue_expired() == []
        assert queue.has_live_claims()

    def test_fail_marker_carries_error(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue("t-0", "task")
        claim = queue.claim("w")
        queue.fail(claim, "w", "ValueError: boom")
        assert queue.failed_tasks() == {"t-0": "ValueError: boom"}
        assert queue.claimed_ids() == set()

    def test_reset_reconciles_a_reused_queue_directory(self, tmp_path):
        """A crashed sweep's leftovers (orphan tasks, stale markers, stop
        sentinel) must not leak into the next sweep."""
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue("old-0", "task")
        queue.enqueue("old-1", "task")
        claim = queue.claim("w")
        queue.enqueue("old-2", "task")
        done = queue.claim("w")
        queue.ack(done, "w")
        queue.fail(queue.claim("w"), "w", "boom")
        queue.write_stop()
        assert claim is not None
        assert queue.reset() == 3  # 1 claimed + 1 done marker + 1 failed marker
        assert queue.pending_ids() == queue.claimed_ids() == set()
        assert queue.done_ids() == set() and queue.failed_tasks() == {}
        assert not queue.stop_requested()

    def test_stop_sentinel(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        assert not queue.stop_requested()
        queue.write_stop()
        assert queue.stop_requested()
        queue.clear_stop()
        assert not queue.stop_requested()

    def test_unsafe_task_id_rejected(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        with pytest.raises(ExperimentError):
            queue.enqueue("../escape", "task")

    def test_nonpositive_lease_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            WorkQueue(tmp_path / "q", lease_timeout_s=0)


# ---------------------------------------------------------------------------
# Distributed execution end to end
# ---------------------------------------------------------------------------


class TestDistributedRunner:
    def test_distributed_identical_to_serial_and_merge_loads(self, tmp_path):
        """2 queue workers vs serial: byte-identical results, sharded layout on
        disk, and every task loads from the merged flat store under its
        context fingerprint (the PR's acceptance criterion)."""
        spec, workload, split = _spec_grid_parts()
        runner = ParallelExperimentRunner(
            spec,
            workload,
            experiment_config=GRID_CONFIG,
            runtime_config=distributed_runtime(
                tmp_path / "store", workers=2, shard_count=4, lease_timeout_s=30
            ),
        )
        distributed = [run_result_as_json(r) for r in runner.run_grid(GRID_METHODS, [split])]

        serial = ParallelExperimentRunner(
            spec,
            workload,
            experiment_config=GRID_CONFIG,
            runtime_config=RuntimeConfig(workers=1),
        )
        expected = [run_result_as_json(r) for r in serial.run_grid(GRID_METHODS, [split])]
        assert distributed == expected

        store = runner.result_store
        assert isinstance(store, ShardedResultStore)
        stored = list(store.completed_files())
        assert len(stored) == len(GRID_METHODS)
        assert all(p.relative_to(store.root).parts[0].startswith("shard-") for p in stored)
        assert store.manifest()["context_fingerprints"]  # refreshed by the coordinator

        merged = store.merge(tmp_path / "merged")
        for task in runner.tasks_for(GRID_METHODS, [split]):
            key, fingerprint = runner.task_key(task), runner.task_fingerprint(task)
            assert merged.exists(key, fingerprint)
            merged.load(key, fingerprint)  # raises on fingerprint mismatch

    def test_dead_worker_claim_is_requeued_and_finished(self, tmp_path):
        """A claim whose worker died (claimed, never heart-beaten) must expire
        and be finished by a surviving worker, byte-identical to serial."""
        spec, workload, split = _spec_grid_parts()
        runner = ParallelExperimentRunner(
            spec,
            workload,
            experiment_config=GRID_CONFIG,
            runtime_config=distributed_runtime(
                tmp_path / "store", workers=1, shard_count=2, lease_timeout_s=1.0
            ),
        )
        tasks = runner.tasks_for(GRID_METHODS, [split])
        queue = WorkQueue(runner.result_store.root / "queue", lease_timeout_s=1.0)
        for index, task in enumerate(tasks):
            queue.enqueue(f"t-{index}", runner.spec_payload(task))
        # Simulate a worker that claimed a task and was then SIGKILLed: the
        # claim exists but its heartbeat never advances.
        doomed = queue.claim("doomed-worker")
        assert doomed is not None

        proc = runner._spawn_worker(queue.root, 0, lease_timeout_s=1.0)
        try:
            deadline = time.monotonic() + 180
            requeued: list[str] = []
            while time.monotonic() < deadline:
                requeued += queue.requeue_expired()
                if queue.done_ids() >= {f"t-{i}" for i in range(len(tasks))}:
                    break
                assert not queue.failed_tasks()
                time.sleep(0.2)
        finally:
            queue.write_stop()
            proc.wait(timeout=60)
        assert doomed.task_id in requeued  # the dead worker's lease was re-queued
        assert queue.done_ids() >= {f"t-{i}" for i in range(len(tasks))}

        serial = ParallelExperimentRunner(
            spec, workload, experiment_config=GRID_CONFIG, runtime_config=RuntimeConfig(workers=1)
        )
        expected = serial.run_grid(GRID_METHODS, [split])
        for task, reference in zip(tasks, expected):
            stored = runner.result_store.load(runner.task_key(task), runner.task_fingerprint(task))
            assert run_result_as_json(stored) == run_result_as_json(reference)

    def test_distributed_resume_skips_completed_tasks(self, tmp_path):
        """A second distributed sweep over a fully-populated store enqueues
        nothing, spawns no workers and serves every result from disk."""
        spec, workload, split = _spec_grid_parts()

        def make_runner():
            return ParallelExperimentRunner(
                spec,
                workload,
                experiment_config=GRID_CONFIG,
                runtime_config=distributed_runtime(tmp_path / "store", workers=2, shard_count=2),
            )

        first = make_runner()
        original = [run_result_as_json(r) for r in first.run_grid(GRID_METHODS, [split])]

        second = make_runner()
        resumed = [run_result_as_json(r) for r in second.run_grid(GRID_METHODS, [split])]
        assert resumed == original
        assert second._distributed_procs == []  # nothing was queued, nobody spawned
        assert second.result_store.loaded_count == len(GRID_METHODS)

    def test_distributed_requires_result_store(self):
        spec, workload, split = _spec_grid_parts()
        runner = ParallelExperimentRunner(
            spec,
            workload,
            experiment_config=GRID_CONFIG,
            runtime_config=RuntimeConfig(workers=2, executor_kind="distributed"),
        )
        with pytest.raises(ExperimentError, match="result store"):
            runner.run_grid(GRID_METHODS, [split])

    def test_distributed_requires_spec_dispatch(self, imdb_db, job_workload, tmp_path):
        """A hand-built database (no spec) cannot ship through the queue."""
        split = DatasetSplit(
            workload_name=job_workload.name,
            sampling=SplitSampling.RANDOM,
            split_index=0,
            train_ids=("1a",),
            test_ids=("1b",),
        )
        database = imdb_db.with_config(imdb_db.config)
        database.spec = None
        runner = ParallelExperimentRunner(
            database,
            job_workload,
            experiment_config=GRID_CONFIG,
            runtime_config=distributed_runtime(tmp_path / "store", workers=2),
        )
        with pytest.raises(ExperimentError, match="spec dispatch"):
            runner.run_grid(("postgres",), [split])
