"""Tests for the numpy ML substrate: MLP, pairwise ranker, tree encoders, replay."""

import numpy as np
import pytest

from repro.encoding.plan_encoding import PlanTreeEncoder
from repro.errors import ModelError, NotTrainedError
from repro.ml.losses import from_log_latency, log_latency, mse_loss, pairwise_accuracy, q_error
from repro.ml.nn import MLPRegressor, PairwiseRanker
from repro.ml.replay import Experience, ReplayBuffer
from repro.ml.tree_models import TreeConvolutionEncoder, TreeLSTMEncoder
from repro.optimizer.planner import Planner


class TestMLPRegressor:
    def test_learns_linear_function(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(400, 6))
        y = x @ np.array([1.0, -2.0, 0.5, 0.0, 3.0, 1.0]) + 0.5
        model = MLPRegressor(input_size=6, hidden_sizes=(32,), seed=1, dropout=0.0)
        model.fit(x, y, epochs=120, seed=1)
        preds = model.predict(x[:50])
        assert mse_loss(preds, y[:50]) < np.var(y) * 0.2

    def test_predict_before_fit_raises(self):
        model = MLPRegressor(input_size=4)
        with pytest.raises(NotTrainedError):
            model.predict(np.zeros(4))

    def test_early_stopping_records_best_epoch(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(60, 4))
        y = rng.normal(size=60)  # pure noise: validation should stop improving
        model = MLPRegressor(input_size=4, seed=2)
        history = model.fit(x, y, epochs=100, patience=5, seed=2)
        assert history.epochs_run <= 100
        assert history.best_epoch >= 0

    def test_shape_validation(self):
        model = MLPRegressor(input_size=3)
        with pytest.raises(ModelError):
            model.fit(np.zeros((5, 3)), np.zeros(4))
        with pytest.raises(ModelError):
            MLPRegressor(input_size=0)

    def test_predict_one_matches_predict(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(100, 5))
        y = x.sum(axis=1)
        model = MLPRegressor(input_size=5, seed=4, dropout=0.0)
        model.fit(x, y, epochs=40)
        assert model.predict_one(x[0]) == pytest.approx(float(model.predict(x[:1])[0]))


class TestPairwiseRanker:
    def test_learns_to_rank_by_norm(self):
        rng = np.random.default_rng(5)
        fast = rng.normal(loc=0.0, size=(300, 6))
        slow = rng.normal(loc=1.5, size=(300, 6))
        ranker = PairwiseRanker(input_size=6, seed=6, dropout=0.0)
        ranker.fit_pairs(fast, slow, epochs=80)
        accuracy = pairwise_accuracy(ranker.score(fast[:100]), ranker.score(slow[:100]))
        assert accuracy > 0.85

    def test_prefer_consistent_with_score(self):
        rng = np.random.default_rng(7)
        fast = rng.normal(loc=0.0, size=(200, 4))
        slow = rng.normal(loc=2.0, size=(200, 4))
        ranker = PairwiseRanker(input_size=4, seed=8, dropout=0.0)
        ranker.fit_pairs(fast, slow, epochs=60)
        assert ranker.prefer(fast[0], slow[0]) == (
            float(ranker.score(fast[0:1])[0]) <= float(ranker.score(slow[0:1])[0])
        )

    def test_score_before_training_raises(self):
        ranker = PairwiseRanker(input_size=4)
        with pytest.raises(NotTrainedError):
            ranker.score(np.zeros(4))

    def test_mismatched_pair_shapes_raise(self):
        ranker = PairwiseRanker(input_size=4)
        with pytest.raises(ModelError):
            ranker.fit_pairs(np.zeros((3, 4)), np.zeros((4, 4)))


class TestTreeEncoders:
    @pytest.fixture(scope="class")
    def encoded_plans(self, imdb_db, job_workload):
        planner = Planner(imdb_db)
        plan_encoder = PlanTreeEncoder(imdb_db.schema)
        plans = {
            qid: planner.plan(job_workload.by_id(qid).bound) for qid in ("1a", "2a", "17a")
        }
        return plan_encoder, plans

    def test_tree_conv_fixed_size_and_deterministic(self, encoded_plans):
        plan_encoder, plans = encoded_plans
        encoder = TreeConvolutionEncoder(plan_encoder, hidden_size=32, seed=1)
        vectors = {qid: encoder.encode_plan(plan) for qid, plan in plans.items()}
        assert all(v.shape == (encoder.output_size,) for v in vectors.values())
        again = encoder.encode_plan(plans["1a"])
        assert np.allclose(again, vectors["1a"])

    def test_tree_conv_distinguishes_plans(self, encoded_plans):
        plan_encoder, plans = encoded_plans
        encoder = TreeConvolutionEncoder(plan_encoder, hidden_size=32, seed=1)
        assert not np.allclose(encoder.encode_plan(plans["1a"]), encoder.encode_plan(plans["2a"]))

    def test_tree_lstm_fixed_size(self, encoded_plans):
        plan_encoder, plans = encoded_plans
        encoder = TreeLSTMEncoder(plan_encoder, hidden_size=24, seed=2)
        vector = encoder.encode_plan(plans["17a"])
        assert vector.shape == (encoder.output_size,)
        assert np.isfinite(vector).all()

    def test_invalid_hidden_size(self, encoded_plans):
        plan_encoder, _ = encoded_plans
        with pytest.raises(ModelError):
            TreeConvolutionEncoder(plan_encoder, hidden_size=0)


class TestLossesAndReplay:
    def test_q_error_symmetric(self):
        assert q_error(np.array([10.0]), np.array([100.0]))[0] == pytest.approx(10.0)
        assert q_error(np.array([100.0]), np.array([10.0]))[0] == pytest.approx(10.0)

    def test_log_latency_roundtrip(self):
        assert from_log_latency(log_latency(123.0)) == pytest.approx(123.0)

    def test_mse_validation(self):
        with pytest.raises(ValueError):
            mse_loss(np.zeros(3), np.zeros(4))

    def test_replay_buffer_capacity(self):
        buffer = ReplayBuffer(capacity=5)
        for i in range(8):
            buffer.add(Experience(query_id=f"q{i}", features=np.zeros(2), latency_ms=float(i + 1)))
        assert len(buffer) == 5
        assert [e.query_id for e in buffer][0] == "q3"

    def test_training_matrix_recent_only(self):
        buffer = ReplayBuffer()
        buffer.add(Experience("a", np.array([1.0]), 10.0, iteration=0))
        buffer.add(Experience("b", np.array([2.0]), 20.0, iteration=1))
        features, targets = buffer.training_matrix(recent_only=True)
        assert features.shape == (1, 1)
        assert targets[0] == pytest.approx(np.log(20.0))
        features_all, _ = buffer.training_matrix(recent_only=False)
        assert features_all.shape == (2, 1)

    def test_per_query_best_ignores_timeouts(self):
        buffer = ReplayBuffer()
        buffer.add(Experience("a", np.zeros(1), 5.0))
        buffer.add(Experience("a", np.zeros(1), 2.0))
        buffer.add(Experience("a", np.zeros(1), 1.0, timed_out=True))
        assert buffer.per_query_best() == {"a": 2.0}
