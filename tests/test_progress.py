"""Tests for the sweep progress reporter (`repro.runtime.progress`).

The snapshot math is exercised against a scripted fake queue with a
deterministic clock (no sleeping, no threads), the reporter thread against a
real file queue, and the worker CLI's ``--progress`` flag end to end.
"""

import json

import pytest

from repro.errors import ExperimentError
from repro.runtime.progress import DEFAULT_PROGRESS_INTERVAL_S, ProgressSnapshot, SweepProgress
from repro.runtime.workqueue import QueueStats, WorkQueue


class ScriptedQueue:
    """A queue whose ``stats()`` replays a scripted sequence of snapshots."""

    def __init__(self, stats_script, worker_script=None):
        self.stats_script = list(stats_script)
        self.worker_script = list(worker_script or [])
        self.calls = 0

    def stats(self) -> QueueStats:
        index = min(self.calls, len(self.stats_script) - 1)
        self.calls += 1
        return self.stats_script[index]

    def worker_done_counts(self):
        if not self.worker_script:
            return {}
        return self.worker_script[min(self.calls - 1, len(self.worker_script) - 1)]


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestProgressSnapshotMath:
    def test_throughput_eta_and_deltas(self):
        clock = FakeClock()
        queue = ScriptedQueue(
            [
                QueueStats(pending=8, claimed=2, done=0, failed=0),
                QueueStats(pending=4, claimed=2, done=4, failed=0),
                QueueStats(pending=0, claimed=0, done=10, failed=0),
            ],
            worker_script=[{}, {"w-0": 2, "w-1": 2}, {"w-0": 5, "w-1": 5}],
        )
        reporter = SweepProgress(queue, total=10, interval_s=1.0, clock=clock)

        clock.advance(10.0)
        first = reporter.poll_once()
        assert first.sequence == 0 and first.done == 0 and first.remaining == 10
        assert first.throughput_per_s == 0.0
        assert first.eta_s is None  # no completions yet: no defensible estimate

        clock.advance(10.0)
        second = reporter.poll_once()
        assert second.done == 4 and second.remaining == 6
        assert second.throughput_per_s == pytest.approx(4 / 20.0)
        assert second.recent_throughput_per_s == pytest.approx(4 / 10.0)
        # ETA prefers the recent rate: 6 remaining at 0.4/s.
        assert second.eta_s == pytest.approx(15.0)
        assert second.workers == {"w-0": 2, "w-1": 2}

        clock.advance(10.0)
        third = reporter.poll_once()
        assert third.done == third.total == 10
        assert third.remaining == 0 and third.eta_s == 0.0
        assert len(reporter.snapshots) == 3 and reporter.latest is third

    def test_unknown_total_has_no_eta(self):
        clock = FakeClock()
        reporter = SweepProgress(
            ScriptedQueue([QueueStats(1, 1, 3, 0)]), total=None, interval_s=1.0, clock=clock
        )
        clock.advance(5.0)
        snapshot = reporter.poll_once()
        assert snapshot.total is None and snapshot.remaining is None and snapshot.eta_s is None
        assert snapshot.throughput_per_s == pytest.approx(3 / 5.0)
        assert "[3 done]" in snapshot.describe() and "eta --" in snapshot.describe()

    def test_eta_falls_back_to_overall_rate_when_window_is_idle(self):
        clock = FakeClock()
        queue = ScriptedQueue(
            [QueueStats(6, 0, 4, 0), QueueStats(6, 0, 4, 0)]  # no progress this window
        )
        reporter = SweepProgress(queue, total=10, interval_s=1.0, clock=clock)
        clock.advance(10.0)
        reporter.poll_once()
        clock.advance(10.0)
        snapshot = reporter.poll_once()
        assert snapshot.recent_throughput_per_s == 0.0
        assert snapshot.eta_s == pytest.approx(6 / (4 / 20.0))

    def test_stolen_counter_and_shard_breakdown_flow_through(self):
        clock = FakeClock()
        stats = QueueStats(3, 0, 0, 0, shard_pending=((0, 2), (3, 1)))
        reporter = SweepProgress(
            ScriptedQueue([stats]), total=3, interval_s=1.0, clock=clock, stolen=lambda: 7
        )
        clock.advance(1.0)
        snapshot = reporter.poll_once()
        assert snapshot.stolen == 7 and snapshot.shard_pending == ((0, 2), (3, 1))
        assert "7 stolen" in snapshot.describe()

    def test_to_dict_is_json_ready_and_stable(self):
        clock = FakeClock()
        reporter = SweepProgress(
            ScriptedQueue([QueueStats(1, 2, 3, 4)], worker_script=[{"b": 1, "a": 2}]),
            total=10,
            interval_s=1.0,
            clock=clock,
        )
        clock.advance(2.0)
        payload = json.loads(reporter.poll_once().to_json())
        assert payload["pending"] == 1 and payload["claimed"] == 2
        assert payload["done"] == 3 and payload["failed"] == 4
        assert payload["total"] == 10 and payload["remaining"] == 7
        assert payload["workers"] == {"a": 2, "b": 1}
        assert set(payload) == {
            "sequence", "elapsed_s", "pending", "claimed", "done", "failed", "total",
            "remaining", "throughput_per_s", "recent_throughput_per_s", "eta_s",
            "workers", "shard_pending", "stolen", "stats_errors",
        }
        assert payload["stats_errors"] == 0

    def test_transport_errors_in_secondary_reads_are_counted_not_silent(self):
        # stats() succeeds but worker_done_counts()/stolen() fail with
        # transport errors: the snapshot degrades (empty workers, stolen=0)
        # and says so via stats_errors instead of silently reading as idle.
        class CountlessQueue(ScriptedQueue):
            def worker_done_counts(self):
                raise OSError("counts endpoint unreachable")

        def flaky_stolen():
            raise OSError("coordinator gone")

        clock = FakeClock()
        queue = CountlessQueue([QueueStats(1, 0, 2, 0)])
        reporter = SweepProgress(queue, total=3, interval_s=1.0, clock=clock, stolen=flaky_stolen)
        clock.advance(1.0)
        first = reporter.poll_once()
        assert first.workers == {} and first.stolen == 0
        assert first.stats_errors == 2  # one for counts, one for stolen
        clock.advance(1.0)
        second = reporter.poll_once()
        assert second.stats_errors == 4  # cumulative across polls
        assert "4 stats errors" in second.describe()
        assert second.to_dict()["stats_errors"] == 4

    def test_genuine_bugs_are_not_swallowed_by_the_poll(self):
        # An AttributeError (e.g. from a refactor renaming the counts hook's
        # internals) is a bug, not a transport failure: it must propagate.
        class BrokenQueue(ScriptedQueue):
            def worker_done_counts(self):
                raise AttributeError("'NoneType' object has no attribute 'items'")

        clock = FakeClock()
        reporter = SweepProgress(BrokenQueue([QueueStats(0, 0, 0, 0)]), interval_s=1.0, clock=clock)
        clock.advance(1.0)
        with pytest.raises(AttributeError):
            reporter.poll_once()

    def test_auth_rejection_stays_loud_in_secondary_reads(self):
        # QueueAuthError subclasses ExperimentError, but a mis-keyed reporter
        # must never degrade quietly into "no workers".
        from repro.runtime.netqueue import QueueAuthError

        class MiskeyedQueue(ScriptedQueue):
            def worker_done_counts(self):
                raise QueueAuthError("queue frame signature mismatch")

        clock = FakeClock()
        reporter = SweepProgress(MiskeyedQueue([QueueStats(0, 0, 0, 0)]), interval_s=1.0, clock=clock)
        clock.advance(1.0)
        with pytest.raises(QueueAuthError):
            reporter.poll_once()

    def test_invalid_parameters_rejected(self):
        queue = ScriptedQueue([QueueStats(0, 0, 0, 0)])
        with pytest.raises(ExperimentError):
            SweepProgress(queue, interval_s=0)
        with pytest.raises(ExperimentError):
            SweepProgress(queue, total=-1)

    def test_callback_receives_every_snapshot(self):
        clock = FakeClock()
        seen: list[ProgressSnapshot] = []
        reporter = SweepProgress(
            ScriptedQueue([QueueStats(0, 0, 1, 0)]),
            total=1,
            interval_s=1.0,
            clock=clock,
            callback=seen.append,
        )
        clock.advance(1.0)
        reporter.poll_once()
        clock.advance(1.0)
        reporter.poll_once()
        assert [snapshot.sequence for snapshot in seen] == [0, 1]


class TestReporterThread:
    def test_background_polling_over_a_real_queue(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue("t-0", "task")
        queue.ack(queue.claim("w"), "w")
        seen = []
        reporter = SweepProgress(queue, total=1, interval_s=0.05, callback=seen.append)
        reporter.start()
        reporter.start()  # idempotent
        deadline = 100
        import time

        for _ in range(deadline):
            if len(seen) >= 2:
                break
            time.sleep(0.05)
        reporter.stop()
        reporter.stop()  # idempotent
        assert len(seen) >= 2
        assert all(snapshot.done == 1 for snapshot in seen)
        assert seen[-1].workers == {"w": 1}
        polled = len(seen)
        time.sleep(0.15)  # a stopped reporter takes no further snapshots
        assert len(seen) == polled

    def test_failing_poll_does_not_kill_the_reporter(self):
        class FlakyQueue:
            def __init__(self):
                self.calls = 0

            def stats(self):
                self.calls += 1
                if self.calls % 2:
                    raise OSError("transient")
                return QueueStats(0, 0, 1, 0)

        queue = FlakyQueue()
        reporter = SweepProgress(queue, total=1, interval_s=0.02)
        reporter.start()
        import time

        for _ in range(100):
            if reporter.latest is not None:
                break
            time.sleep(0.02)
        reporter.stop()
        assert reporter.latest is not None  # survived the failing polls in between
        assert queue.calls >= 2
        # The swallowed transport errors are visible, not silent: the first
        # stats() call raised, so every later snapshot counts it.
        assert reporter.latest.stats_errors >= 1


class TestWorkerProgressFlag:
    def test_idle_worker_emits_json_snapshots(self, tmp_path, capsys):
        """`--progress` on an idle worker prints parseable JSON snapshot lines
        (no tasks needed: the reporter reads queue state, not results)."""
        from repro.runtime.worker import run_worker

        WorkQueue(tmp_path / "q")  # pre-create so the worker sees a valid layout
        completed = run_worker(
            str(tmp_path / "q"),
            worker_id="idle-w",
            poll_interval_s=0.05,
            idle_timeout_s=0.5,
            progress_interval_s=0.1,
        )
        assert completed == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line.startswith("{")]
        assert lines, "no progress snapshots were printed"
        for line in lines:
            payload = json.loads(line)
            assert payload["done"] == 0 and payload["total"] is None

    def test_cli_wires_shard_and_progress_through(self, monkeypatch, tmp_path):
        from repro.runtime import worker as worker_module

        captured = {}

        def fake_run_worker(queue_target, **kwargs):
            captured.update(kwargs, queue_target=queue_target)
            return 0

        monkeypatch.setattr(worker_module, "run_worker", fake_run_worker)
        assert worker_module.main([str(tmp_path / "q"), "--shard", "2", "--progress"]) == 0
        assert captured["shard"] == 2
        assert captured["progress_interval_s"] == DEFAULT_PROGRESS_INTERVAL_S

        captured.clear()
        worker_module.main([str(tmp_path / "q"), "--progress", "0.5"])
        assert captured["progress_interval_s"] == 0.5
        assert captured["shard"] is None
