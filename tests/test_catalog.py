"""Tests for schema definitions, ANALYZE statistics and the data generators."""

import numpy as np
import pytest

from repro.catalog.datagen import (
    categorical_column,
    foreign_keys,
    primary_keys,
    year_column,
    zipf_choice,
    zipf_weights,
)
from repro.catalog.imdb import MOVIE_RELATED_TABLES, imdb_schema
from repro.catalog.schema import Column, ColumnType, ForeignKey, Schema, Table
from repro.catalog.statistics import NULL_SENTINEL, analyze_column, analyze_table, scaled_statistics
from repro.catalog.stack import stack_schema
from repro.errors import CatalogError


class TestSchemaObjects:
    def test_table_rejects_duplicate_columns(self):
        with pytest.raises(CatalogError):
            Table("t", [Column("a"), Column("a")])

    def test_table_rejects_unknown_primary_key(self):
        with pytest.raises(CatalogError):
            Table("t", [Column("a")], primary_key="b")

    def test_column_lookup(self):
        table = Table("t", [Column("id"), Column("x", ColumnType.TEXT)])
        assert table.column("x").ctype is ColumnType.TEXT
        with pytest.raises(CatalogError):
            table.column("missing")

    def test_indexed_columns_include_primary_key(self):
        table = Table("t", [Column("id"), Column("x")])
        table.add_index("x")
        assert table.indexed_columns() == {"id", "x"}

    def test_schema_foreign_key_validation(self):
        parent = Table("p", [Column("id")])
        child = Table("c", [Column("id"), Column("p_id")])
        schema = Schema("s", [parent, child])
        schema.add_foreign_key(ForeignKey("c", "p_id", "p", "id"))
        assert schema.join_columns("c", "p") == [("p_id", "id")]
        with pytest.raises(CatalogError):
            schema.add_foreign_key(ForeignKey("c", "missing", "p", "id"))

    def test_column_index_is_stable_and_unique(self, schema_only):
        seen = set()
        for tname in schema_only.table_names():
            for cname in schema_only.table(tname).column_names():
                idx = schema_only.column_index(tname, cname)
                assert idx not in seen
                seen.add(idx)
        assert len(seen) == schema_only.total_columns


class TestImdbSchema:
    def test_has_21_tables(self):
        assert len(imdb_schema()) == 21

    def test_balsa_extra_indexes_present(self):
        schema = imdb_schema()
        cc = schema.table("complete_cast")
        assert cc.has_index_on("subject_id")
        assert cc.has_index_on("status_id")

    def test_title_is_connected_to_movie_tables(self):
        schema = imdb_schema()
        edges = set(schema.join_graph_edges())
        for table in MOVIE_RELATED_TABLES:
            if table == "title":
                continue
            assert tuple(sorted((table, "title"))) in edges

    def test_every_fk_column_is_indexed(self):
        schema = imdb_schema()
        for fk in schema.foreign_keys:
            assert schema.table(fk.child_table).has_index_on(fk.child_column)


class TestStackSchema:
    def test_has_10_tables(self):
        assert len(stack_schema()) == 10

    def test_question_joins_site_and_user(self):
        schema = stack_schema()
        assert schema.join_columns("question", "site") == [("site_id", "id")]
        assert schema.join_columns("question", "so_user") == [("owner_user_id", "id")]


class TestDatagen:
    def test_zipf_weights_normalized_and_decreasing(self):
        weights = zipf_weights(10, skew=1.2)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(np.diff(weights) <= 0)

    def test_zipf_choice_produces_skew(self):
        rng = np.random.default_rng(0)
        sample = zipf_choice(rng, np.arange(100), 20_000, skew=1.3)
        _, counts = np.unique(sample, return_counts=True)
        assert counts.max() > 5 * counts.mean()

    def test_primary_keys_dense(self):
        keys = primary_keys(5, start=3)
        assert keys.tolist() == [3, 4, 5, 6, 7]

    def test_foreign_keys_reference_parents(self):
        rng = np.random.default_rng(1)
        parents = primary_keys(50)
        fks = foreign_keys(rng, parents, 500, null_frac=0.1)
        non_null = fks[fks != NULL_SENTINEL]
        assert np.isin(non_null, parents).all()
        assert (fks == NULL_SENTINEL).mean() == pytest.approx(0.1, abs=0.05)

    def test_year_column_bounds_and_nulls(self):
        rng = np.random.default_rng(2)
        years = year_column(rng, 1000, low=1950, high=2020, null_frac=0.05)
        valid = years[years != NULL_SENTINEL]
        assert valid.min() >= 1950 and valid.max() <= 2020
        # recency bias: more movies after the midpoint than before
        assert (valid > 1985).mean() > 0.6

    def test_categorical_column_domain(self):
        rng = np.random.default_rng(3)
        col = categorical_column(rng, 4, 1000, start=1)
        assert set(np.unique(col)).issubset({1, 2, 3, 4})


class TestStatistics:
    def test_analyze_column_counts_nulls_and_distincts(self):
        values = np.array([1, 1, 2, 3, NULL_SENTINEL, NULL_SENTINEL], dtype=np.int64)
        stats = analyze_column("c", values, ColumnType.INTEGER)
        assert stats.row_count == 6
        assert stats.null_frac == pytest.approx(2 / 6)
        assert stats.n_distinct == 3

    def test_equality_selectivity_of_mcv(self):
        values = np.array([1] * 90 + [2] * 5 + [3] * 5, dtype=np.int64)
        stats = analyze_column("c", values, ColumnType.INTEGER)
        assert stats.equality_selectivity(1) == pytest.approx(0.9, abs=0.05)

    def test_range_selectivity_monotone(self):
        rng = np.random.default_rng(4)
        values = rng.integers(0, 1000, 5000)
        stats = analyze_column("c", values.astype(np.int64), ColumnType.INTEGER)
        sel_low = stats.range_selectivity("<", 100)
        sel_high = stats.range_selectivity("<", 900)
        assert 0.0 <= sel_low <= sel_high <= 1.0
        assert sel_high == pytest.approx(0.9, abs=0.1)

    def test_range_selectivity_rejects_bad_operator(self):
        stats = analyze_column("c", np.array([1, 2, 3], dtype=np.int64), ColumnType.INTEGER)
        with pytest.raises(CatalogError):
            stats.range_selectivity("=", 1)

    def test_analyze_table_page_count(self, imdb_db):
        table = imdb_db.schema.table("title")
        data = imdb_db.table_data("title")
        stats = analyze_table(table, data.columns)
        assert stats.row_count == data.row_count
        assert stats.page_count >= 1
        assert stats.column("production_year").n_distinct > 10

    def test_analyze_table_detects_length_mismatch(self, imdb_db):
        table = imdb_db.schema.table("kind_type")
        with pytest.raises(CatalogError):
            analyze_table(table, {"id": np.arange(3), "kind": np.arange(4)})

    def test_scaled_statistics_halves_rows(self, imdb_db):
        stats = imdb_db.statistics("title")
        scaled = scaled_statistics(stats, 0.5)
        assert scaled.row_count == pytest.approx(stats.row_count * 0.5, abs=1)
        assert scaled.column("production_year").min_value == stats.column("production_year").min_value
        with pytest.raises(CatalogError):
            scaled_statistics(stats, 0.0)


class TestGeneratedDatabases:
    def test_imdb_row_counts_scale(self, imdb_db):
        assert imdb_db.table_data("cast_info").row_count > imdb_db.table_data("title").row_count
        assert imdb_db.table_data("title").row_count >= 200

    def test_imdb_fk_integrity_title(self, imdb_db):
        titles = imdb_db.table_data("title").column("id")
        mk = imdb_db.table_data("movie_keyword").column("movie_id")
        assert np.isin(mk, titles).all()

    def test_imdb_dimension_values_match_pools(self, imdb_db):
        info_type = imdb_db.table_data("info_type")
        decoded = [info_type.decode("info", int(c)) for c in info_type.column("info")]
        assert "rating" in decoded and "genres" in decoded

    def test_generation_is_deterministic(self):
        from repro.catalog.imdb import generate_imdb

        a = generate_imdb(scale=0.25, seed=5)
        b = generate_imdb(scale=0.25, seed=5)
        assert np.array_equal(
            a.table_data("cast_info").column("movie_id"),
            b.table_data("cast_info").column("movie_id"),
        )

    def test_stack_fk_integrity(self, stack_db):
        questions = stack_db.table_data("question").column("id")
        answers = stack_db.table_data("answer").column("question_id")
        assert np.isin(answers, questions).all()
